"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute a distributed training job (the full VC pipeline) and print
    per-epoch progress.  Supports preemption injection, replication,
    autoscaling, warm start and checkpointing.
``single``
    Run the serial single-instance baseline on the same workload.
``cost``
    Print the §IV-E fleet cost table (standard vs preemptible).
``preempt-model``
    Print the §IV-E expected-delay table for a job shape.
``alpha-study``
    Quick α sweep at a chosen P/C/T.
``dashboard``
    Render an exported telemetry JSON (``--metrics-out``) as ASCII panels.
``trace``
    Analyze a raw trace dump (``--trace-out``): workunit lineage summary,
    hop-by-hop critical path, per-workunit drill-down, Perfetto export.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Sequence

from .analysis import (
    format_hours,
    render_table,
    sweep_dashboard,
    telemetry_dashboard,
)
from .cloud import PricingClass, paper_p5c5t2_fleet
from .core import (
    RULE_NAMES,
    ConstantAlpha,
    FaultConfig,
    RunResult,
    TrainingJobConfig,
    VarAlpha,
    make_rule,
    run_experiment,
)
from .core.baselines import run_single_instance
from .errors import ConfigurationError
from .core.checkpoint import load_checkpoint, save_checkpoint
from .nn.codecs import CODEC_NAMES, VALUE_QUANTS
from .core.runner import DistributedRunner
from .obs import (
    ObservabilityConfig,
    SpanStore,
    build_sweep_telemetry,
    read_telemetry,
    read_trace_jsonl,
    write_perfetto_trace,
    write_telemetry,
    write_trace_jsonl,
)
from .simulation import BernoulliSubtaskModel
from .simulation.adversary import (
    ATTACK_KINDS,
    AdversaryBehavior,
    AdversaryPlan,
    SybilFleet,
)
from .simulation.chaos import (
    ChaosPlan,
    PartitionWindow,
    ServerCrash,
    StoreFaultWindow,
    TransferFaultPlan,
)

__all__ = ["main", "build_parser"]


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """Fault-model flags shared by ``run`` and ``sweep``."""
    fleet = parser.add_argument_group("fleet faults")
    fleet.add_argument(
        "--preempt-p", type=float, default=0.0, help="hourly interruption probability"
    )
    fleet.add_argument(
        "--corrupt-clients",
        type=int,
        default=0,
        metavar="N",
        help="first N clients upload subtly corrupted parameters",
    )
    fleet.add_argument(
        "--corruption-scale",
        type=float,
        default=1.0,
        help="relative magnitude of the corruption noise",
    )
    fleet.add_argument(
        "--churn-per-hour",
        type=float,
        default=0.0,
        metavar="RATE",
        help="Poisson arrival rate of extra volunteer hosts",
    )
    fleet.add_argument(
        "--max-volunteers",
        type=int,
        default=0,
        metavar="N",
        help="cap on extra volunteer hosts (0 = no volunteers)",
    )
    chaos = parser.add_argument_group("chaos plan (layered fault injection)")
    chaos.add_argument(
        "--xfer-fail-p",
        type=float,
        default=0.0,
        metavar="P",
        help="per-transfer abort probability (persistent-transfer retries kick in)",
    )
    chaos.add_argument(
        "--xfer-stall-p",
        type=float,
        default=0.0,
        metavar="P",
        help="per-transfer stall probability",
    )
    chaos.add_argument(
        "--xfer-stall-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="time a client waits before detecting a stalled transfer",
    )
    chaos.add_argument(
        "--partition",
        action="append",
        default=[],
        metavar="START:DUR[:CLIENTS]",
        help="network partition window (seconds; CLIENTS is a comma list of "
        "client ids, omitted = whole fleet); repeatable",
    )
    chaos.add_argument(
        "--ps-crash",
        action="append",
        default=[],
        metavar="TIME[:RESTART_DELAY]",
        help="parameter-server crash at TIME s, replacement after "
        "RESTART_DELAY s ('never' = permanent loss); repeatable",
    )
    chaos.add_argument(
        "--kv-outage",
        action="append",
        default=[],
        metavar="START:DUR",
        help="KV-store hard outage window (ops block until it lifts); repeatable",
    )
    chaos.add_argument(
        "--kv-degrade",
        action="append",
        default=[],
        metavar="START:DUR:FACTOR",
        help="KV-store degraded-latency window (ops slowed by FACTOR); repeatable",
    )
    chaos.add_argument(
        "--no-chaos-restore",
        action="store_true",
        help="do not restore from the epoch checkpoint after a total "
        "parameter-server outage",
    )
    adv = parser.add_argument_group("byzantine adversaries")
    adv.add_argument(
        "--adversary",
        action="append",
        default=[],
        metavar="CLIENTS:ATTACK[:MAGNITUDE[:CLAIM_FACTOR]]",
        help="compromise clients (comma list of ids) with ATTACK "
        f"(one of {', '.join(ATTACK_KINDS)}); repeatable",
    )
    adv.add_argument(
        "--sybils",
        action="append",
        default=[],
        metavar="IDENTITY:COUNT:ATTACK[:MAGNITUDE]",
        help="add COUNT sybil clients under one adversary identity; repeatable",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed DL on a volunteer-computing-like paradigm "
        "(paper reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a distributed training job")
    run_p.add_argument("--servers", "-p", type=int, default=3, help="Pn")
    run_p.add_argument("--clients", "-c", type=int, default=3, help="Cn")
    run_p.add_argument("--concurrency", "-t", type=int, default=2, help="Tn")
    run_p.add_argument("--epochs", type=int, default=10)
    run_p.add_argument("--shards", type=int, default=50)
    run_p.add_argument(
        "--alpha",
        default="var",
        help="constant alpha in (0,1] or 'var' for alpha_e = e/(e+1)",
    )
    run_p.add_argument(
        "--rule",
        choices=RULE_NAMES,
        default="vcasgd",
        help="server-side update rule (vcasgd honours --alpha; the rest "
        "run the ASGD family on the same substrate)",
    )
    run_p.add_argument(
        "--server-lr",
        type=float,
        default=None,
        help="server step size for gradient rules (downpour/dcasgd/rescaled); "
        "ignored by averaging rules",
    )
    run_p.add_argument("--target", type=float, default=None, help="stop accuracy")
    run_p.add_argument("--store", choices=["eventual", "strong"], default="eventual")
    codec_g = run_p.add_argument_group("parameter transfer codecs")
    codec_g.add_argument(
        "--codec",
        choices=CODEC_NAMES,
        default=None,
        help="wire codec for parameter transfers (default: the flat "
        "compressed-size model; lossy codecs train on decoded values)",
    )
    codec_g.add_argument(
        "--topk",
        type=float,
        default=0.01,
        metavar="FRACTION",
        help="fraction of coordinates the topk codec keeps per upload",
    )
    codec_g.add_argument(
        "--quant",
        choices=VALUE_QUANTS,
        default="fp32",
        help="value quantization for the topk codec's kept coordinates",
    )
    _add_fault_args(run_p)
    run_p.add_argument("--replicas", type=int, default=1)
    run_p.add_argument("--quorum", type=int, default=None)
    defense = run_p.add_argument_group("byzantine defenses")
    defense.add_argument(
        "--collusion-guard",
        action="store_true",
        help="reliability-weighted canonical selection in the replica quorum",
    )
    defense.add_argument(
        "--quarantine-after",
        type=int,
        default=0,
        metavar="N",
        help="bar a host from work after N invalidated results (0 = never)",
    )
    defense.add_argument(
        "--max-param-norm",
        type=float,
        default=None,
        metavar="NORM",
        help="validator rejects uploads whose parameter L2 norm exceeds NORM",
    )
    run_p.add_argument("--autoscale", action="store_true")
    run_p.add_argument(
        "--work-fetch",
        choices=["poke", "ping"],
        default="poke",
        help="work-fetch protocol: legacy poke broadcast or fleet-scale "
        "ping + server-suggested-sleep",
    )
    run_p.add_argument(
        "--server-planes",
        type=int,
        default=1,
        help="sharded work-generator/validator planes (1 = single plane)",
    )
    run_p.add_argument(
        "--cohort-size",
        type=int,
        default=1,
        metavar="N",
        help="fuse up to N clients' training steps into one vectorized "
        "cohort pass (bit-identical to serial; 1 = inline legacy path)",
    )
    run_p.add_argument(
        "--step-jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan one run's client steps out over N worker processes "
        "reading parameters from a shared-memory plane (1 = in-process)",
    )
    run_p.add_argument("--warm-start", type=int, default=0, metavar="PASSES")
    run_p.add_argument("--seed", type=int, default=1234)
    run_p.add_argument("--checkpoint-out", default=None, metavar="FILE")
    run_p.add_argument("--resume", default=None, metavar="FILE")
    obs_g = run_p.add_argument_group("observability")
    obs_g.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write schema-versioned run telemetry (metrics, audit report, "
        "profile) as JSON",
    )
    obs_g.add_argument(
        "--no-audit",
        action="store_true",
        help="detach the invariant auditor (it is on by default)",
    )
    obs_g.add_argument(
        "--profile",
        action="store_true",
        help="attach the wall-clock profiler (per event-label attribution)",
    )
    obs_g.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="dump the raw trace-record stream as schema-versioned JSONL "
        "(readable by 'repro trace')",
    )
    obs_g.add_argument(
        "--trace-max-records",
        type=int,
        default=None,
        metavar="N",
        help="bound the in-memory trace to the newest N records "
        "(ring/drop policy; drops are counted in trace.dropped)",
    )

    single_p = sub.add_parser("single", help="serial single-instance baseline")
    single_p.add_argument("--epochs", type=int, default=10)
    single_p.add_argument("--seed", type=int, default=1234)
    single_p.add_argument("--target", type=float, default=None)

    cost_p = sub.add_parser("cost", help="fleet cost table (SecIV-E)")
    cost_p.add_argument("--hours", type=float, default=8.0)

    model_p = sub.add_parser("preempt-model", help="expected-delay table (SecIV-E)")
    model_p.add_argument("--subtasks", type=int, default=2000)
    model_p.add_argument("--clients", type=int, default=5)
    model_p.add_argument("--concurrency", type=int, default=2)
    model_p.add_argument("--exec-min", type=float, default=2.4)
    model_p.add_argument("--timeout-min", type=float, default=5.0)

    sweep_p = sub.add_parser(
        "sweep", help="grid sweep over Pn/Cn/Tn (comma-separated values)"
    )
    sweep_p.add_argument("--servers", "-p", default="1,3", help="e.g. 1,3,5")
    sweep_p.add_argument("--clients", "-c", default="3")
    sweep_p.add_argument("--concurrency", "-t", default="2,4")
    sweep_p.add_argument("--epochs", type=int, default=5)
    sweep_p.add_argument("--shards", type=int, default=25)
    sweep_p.add_argument("--alpha", default="0.95")
    sweep_p.add_argument(
        "--rule",
        default="vcasgd",
        help="comma-separated update rules; more than one adds a sweep axis "
        f"(choices: {', '.join(RULE_NAMES)})",
    )
    sweep_p.add_argument(
        "--server-lr",
        type=float,
        default=None,
        help="server step size for gradient rules (downpour/dcasgd/rescaled)",
    )
    sweep_p.add_argument(
        "--codec",
        default=None,
        help="comma-separated wire codecs; 'none' is the flat model; more "
        f"than one adds a sweep axis (choices: none, {', '.join(CODEC_NAMES)})",
    )
    sweep_p.add_argument("--seed", type=int, default=1234)
    sweep_p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="run sweep points in N worker processes (runs are independent "
        "and deterministic, so results are identical to a serial sweep)",
    )
    sweep_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write one telemetry document per sweep point as a single "
        "sweep-schema JSON",
    )
    _add_fault_args(sweep_p)

    alpha_p = sub.add_parser("alpha-study", help="quick alpha sweep")
    alpha_p.add_argument("--servers", "-p", type=int, default=3)
    alpha_p.add_argument("--clients", "-c", type=int, default=3)
    alpha_p.add_argument("--concurrency", "-t", type=int, default=4)
    alpha_p.add_argument("--epochs", type=int, default=12)
    alpha_p.add_argument(
        "--alphas", default="0.7,0.95,var", help="comma-separated values / 'var'"
    )

    dash_p = sub.add_parser(
        "dashboard", help="render exported telemetry JSON as ASCII panels"
    )
    dash_p.add_argument("file", metavar="FILE", help="telemetry JSON to render")

    trace_p = sub.add_parser(
        "trace",
        help="analyze a trace dump ('repro run --trace-out'): lineage "
        "summary, critical path, Perfetto export",
    )
    trace_p.add_argument("file", metavar="FILE", help="trace JSONL to analyze")
    trace_p.add_argument(
        "--critical-path",
        action="store_true",
        help="print the hop-by-hop critical path (sums to wall clock)",
    )
    trace_p.add_argument(
        "--wu",
        default=None,
        metavar="ID",
        help="drill into one workunit's span tree",
    )
    trace_p.add_argument(
        "--perfetto",
        default=None,
        metavar="FILE",
        help="export Chrome/Perfetto trace-event JSON "
        "(load at ui.perfetto.dev)",
    )
    return parser


def _parse_alpha(text: str):
    if text.lower() == "var":
        return VarAlpha()
    return ConstantAlpha(float(text))


def _split_fields(text: str, spec: str, min_fields: int, max_fields: int) -> list[str]:
    fields = text.split(":")
    if not min_fields <= len(fields) <= max_fields:
        raise SystemExit(f"expected {spec}, got {text!r}")
    return fields


def _parse_partition(text: str) -> PartitionWindow:
    fields = _split_fields(text, "START:DUR[:CLIENTS]", 2, 3)
    clients: tuple[str, ...] = ()
    if len(fields) == 3 and fields[2]:
        clients = tuple(c.strip() for c in fields[2].split(",") if c.strip())
    return PartitionWindow(float(fields[0]), float(fields[1]), clients)


def _parse_ps_crash(text: str) -> ServerCrash:
    fields = _split_fields(text, "TIME[:RESTART_DELAY]", 1, 2)
    delay: float | None = 120.0
    if len(fields) == 2:
        delay = None if fields[1].lower() == "never" else float(fields[1])
    return ServerCrash(float(fields[0]), delay)


def _parse_kv_outage(text: str) -> StoreFaultWindow:
    fields = _split_fields(text, "START:DUR", 2, 2)
    return StoreFaultWindow(float(fields[0]), float(fields[1]))


def _parse_kv_degrade(text: str) -> StoreFaultWindow:
    fields = _split_fields(text, "START:DUR:FACTOR", 3, 3)
    return StoreFaultWindow(float(fields[0]), float(fields[1]), float(fields[2]))


def _parse_adversary_behavior(text: str) -> AdversaryBehavior:
    fields = _split_fields(text, "CLIENTS:ATTACK[:MAGNITUDE[:CLAIM_FACTOR]]", 2, 4)
    clients = tuple(c.strip() for c in fields[0].split(",") if c.strip())
    try:
        return AdversaryBehavior(
            clients=clients,
            attack=fields[1],
            magnitude=float(fields[2]) if len(fields) > 2 else 1.0,
            claim_factor=float(fields[3]) if len(fields) > 3 else 1.0,
        )
    except ConfigurationError as err:
        raise SystemExit(f"--adversary {text!r}: {err}") from err


def _parse_sybils(text: str) -> SybilFleet:
    fields = _split_fields(text, "IDENTITY:COUNT:ATTACK[:MAGNITUDE]", 3, 4)
    try:
        return SybilFleet(
            identity=fields[0],
            count=int(fields[1]),
            attack=fields[2],
            magnitude=float(fields[3]) if len(fields) > 3 else 1.0,
        )
    except ConfigurationError as err:
        raise SystemExit(f"--sybils {text!r}: {err}") from err


def _parse_faults(args: argparse.Namespace) -> FaultConfig:
    """Build the FaultConfig (including any chaos plan) from CLI flags."""
    adversary = AdversaryPlan(
        behaviors=tuple(_parse_adversary_behavior(b) for b in args.adversary),
        sybils=tuple(_parse_sybils(s) for s in args.sybils),
    )
    plan = ChaosPlan(
        transfer=TransferFaultPlan(
            failure_p=args.xfer_fail_p,
            stall_p=args.xfer_stall_p,
            stall_timeout_s=args.xfer_stall_timeout,
        ),
        partitions=tuple(_parse_partition(p) for p in args.partition),
        ps_crashes=tuple(_parse_ps_crash(c) for c in args.ps_crash),
        kv_windows=tuple(_parse_kv_outage(w) for w in args.kv_outage)
        + tuple(_parse_kv_degrade(w) for w in args.kv_degrade),
        restore_from_checkpoint=not args.no_chaos_restore,
    )
    return FaultConfig(
        preemption_hourly_p=args.preempt_p,
        corrupt_clients=args.corrupt_clients,
        corruption_scale=args.corruption_scale,
        volunteer_arrivals_per_hour=args.churn_per_hour,
        max_volunteers=args.max_volunteers,
        chaos=plan if plan.active else None,
        adversary=adversary if adversary.active else None,
    )


_GRADIENT_RULES = {"downpour", "dcasgd", "rescaled"}


def _rule_kwargs(name: str, server_lr) -> dict:
    if server_lr is not None and name.strip().lower() in _GRADIENT_RULES:
        return {"server_lr": server_lr}
    return {}


def _parse_rule(name: str, schedule, server_lr=None):
    """CLI rule name -> config value; None keeps the default VC-ASGD path."""
    if name.strip().lower() == "vcasgd":
        return None
    return make_rule(name, alpha_schedule=schedule, **_rule_kwargs(name, server_lr))


def _print_run(result: RunResult) -> None:
    rows = [
        [
            rec.epoch,
            format_hours(rec.end_time_s),
            round(rec.val_accuracy_mean, 3),
            round(rec.test_accuracy, 3),
        ]
        for rec in result.epochs
    ]
    print(render_table(["epoch", "time", "val acc", "test acc"], rows))
    print(f"stopped: {result.stopped_reason}; counters: {result.counters}")


def _cmd_run(args: argparse.Namespace) -> int:
    config = TrainingJobConfig(
        num_param_servers=args.servers,
        num_clients=args.clients,
        max_concurrent_subtasks=args.concurrency,
        max_epochs=args.epochs,
        num_shards=args.shards,
        alpha_schedule=_parse_alpha(args.alpha),
        update_rule=_parse_rule(args.rule, _parse_alpha(args.alpha), args.server_lr),
        target_accuracy=args.target,
        store_kind=args.store,
        replicas=args.replicas,
        quorum=args.quorum if args.quorum is not None else min(2, args.replicas),
        collusion_guard=args.collusion_guard,
        quarantine_after=args.quarantine_after,
        max_param_norm=args.max_param_norm,
        ps_autoscale=args.autoscale,
        warm_start_passes=args.warm_start,
        work_fetch=args.work_fetch,
        server_planes=args.server_planes,
        cohort_size=args.cohort_size,
        step_jobs=args.step_jobs,
        codec=args.codec,
        codec_topk=args.topk,
        codec_quant=args.quant,
        faults=_parse_faults(args),
        seed=args.seed,
    )
    resume = load_checkpoint(args.resume) if args.resume else None
    obs_config = ObservabilityConfig(
        audit=not args.no_audit,
        profile=args.profile,
        trace_max_records=args.trace_max_records,
    )
    runner = DistributedRunner(config, resume_from=resume, observability=obs_config)
    result = runner.run()
    _print_run(result)
    if args.metrics_out:
        telemetry = runner.telemetry()
        write_telemetry(args.metrics_out, telemetry)
        print(f"telemetry written to {args.metrics_out} (digest {telemetry['digest']})")
    if args.trace_out:
        count = write_trace_jsonl(
            runner.trace, args.trace_out, meta={"label": result.label, "seed": args.seed}
        )
        print(f"trace written to {args.trace_out} ({count} records)")
    if args.checkpoint_out:
        save_checkpoint(args.checkpoint_out, runner.checkpoint())
        print(f"checkpoint written to {args.checkpoint_out}")
    return 0


def _cmd_single(args: argparse.Namespace) -> int:
    config = TrainingJobConfig(
        max_epochs=args.epochs, seed=args.seed, target_accuracy=args.target
    )
    _print_run(run_single_instance(config))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    standard = paper_p5c5t2_fleet(PricingClass.STANDARD)
    preempt = paper_p5c5t2_fleet(PricingClass.PREEMPTIBLE)
    rows = [
        ["standard", round(standard.hourly_cost(), 3), round(standard.job_cost(args.hours), 2)],
        ["preemptible", round(preempt.hourly_cost(), 3), round(preempt.job_cost(args.hours), 2)],
        ["saving", f"{100 * preempt.savings_fraction():.0f}%", ""],
    ]
    print(
        render_table(
            ["pricing", "$/hour", f"$ for {args.hours:g} h"],
            rows,
            title="P5C5T2 fleet (paper Table I clients)",
        )
    )
    return 0


def _cmd_preempt_model(args: argparse.Namespace) -> int:
    model = BernoulliSubtaskModel(
        n_s=args.subtasks,
        n_c=args.clients,
        n_tc=args.concurrency,
        t_e=args.exec_min * 60,
        t_o=args.timeout_min * 60,
    )
    rows = [
        [f"{p:.2f}", round(model.expected_delay(p) / 60, 1),
         round(model.expected_training_time(p) / 3600, 2)]
        for p in (0.0, 0.05, 0.10, 0.20)
    ]
    print(
        render_table(
            ["p", "E[delay] min", "E[total] h"],
            rows,
            title=f"Binomial delay model (n={model.n:g} waves)",
        )
    )
    return 0


def _cmd_alpha_study(args: argparse.Namespace) -> int:
    base = TrainingJobConfig(
        num_param_servers=args.servers,
        num_clients=args.clients,
        max_concurrent_subtasks=args.concurrency,
        max_epochs=args.epochs,
    )
    rows = []
    for token in args.alphas.split(","):
        schedule = _parse_alpha(token.strip())
        result = run_experiment(dataclasses.replace(base, alpha_schedule=schedule))
        acc = result.val_accuracy()
        rows.append(
            [
                schedule.describe(),
                round(float(acc[min(2, len(acc) - 1)]), 3),
                round(float(acc[-1]), 3),
                round(result.mean_spread(last_k=3), 4),
            ]
        )
    print(
        render_table(
            ["schedule", "early acc", "final acc", "late spread"],
            rows,
            title=f"alpha study at {base.label}",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core import Sweep, SweepPoint
    from .core.parallel import run_configs

    schedule = _parse_alpha(args.alpha)
    rule_tokens = [token.strip() for token in args.rule.split(",") if token.strip()]
    codec_tokens = [
        token.strip().lower()
        for token in (args.codec or "").split(",")
        if token.strip()
    ]
    for token in codec_tokens:
        if token != "none" and token not in CODEC_NAMES:
            raise SystemExit(
                f"unknown codec {token!r} (choices: none, {', '.join(CODEC_NAMES)})"
            )
    jobs = max(1, args.jobs)
    base = TrainingJobConfig(
        max_epochs=args.epochs,
        num_shards=args.shards,
        alpha_schedule=schedule,
        update_rule=(
            _parse_rule(rule_tokens[0], schedule, args.server_lr)
            if len(rule_tokens) == 1
            else None
        ),
        codec=(
            None
            if len(codec_tokens) != 1 or codec_tokens[0] == "none"
            else codec_tokens[0]
        ),
        faults=_parse_faults(args),
        seed=args.seed,
    )
    telemetry_runs: list[dict] = []
    if args.metrics_out and jobs == 1:
        # Swap in a runner that keeps the DistributedRunner long enough to
        # export its telemetry; every sweep point runs with the auditor on.
        def traced_runner(config: TrainingJobConfig) -> RunResult:
            runner = DistributedRunner(config)
            result = runner.run()
            telemetry_runs.append(runner.telemetry())
            return result

        sweep = Sweep(base, runner=traced_runner)
    else:
        sweep = Sweep(base)
    sweep.axis("num_param_servers", [int(v) for v in args.servers.split(",")])
    sweep.axis("num_clients", [int(v) for v in args.clients.split(",")])
    sweep.axis("max_concurrent_subtasks", [int(v) for v in args.concurrency.split(",")])
    if len(rule_tokens) > 1:
        # Rule-comparison sweeps carry explicit rule objects (vcasgd
        # included) so each point's label names the rule it ran.
        sweep.axis(
            "update_rule",
            [
                make_rule(token, schedule, **_rule_kwargs(token, args.server_lr))
                for token in rule_tokens
            ],
        )
    if len(codec_tokens) > 1:
        sweep.axis(
            "codec",
            [None if token == "none" else token for token in codec_tokens],
        )
    print(f"running {sweep.size} configurations ...")
    if jobs > 1:
        # Parallel path: fan the grid out over worker processes, carrying
        # each run's telemetry back so --metrics-out still works.
        pairs = sweep.configs()
        outcomes = run_configs(
            [config for _, config in pairs],
            jobs=jobs,
            collect_telemetry=bool(args.metrics_out),
            on_fallback=lambda fb: print(
                f"  note: {fb.kind} — {fb.configs} config(s) cannot be "
                f"shipped to workers ({fb.reason}); running serially"
            ),
        )
        for (overrides, config), (result, telemetry) in zip(pairs, outcomes):
            sweep.points.append(
                SweepPoint(overrides=overrides, config=config, result=result)
            )
            if telemetry is not None:
                telemetry_runs.append(telemetry)
            print(f"  done: {sweep.points[-1].label()}")
    else:
        sweep.run(progress=lambda p: print(f"  done: {p.label()}"))
    print(render_table(sweep.headers(), sweep.table_rows(), title="sweep results"))
    fastest = sweep.best("total_time_hours", maximize=False)
    best_acc = sweep.best("final_val_accuracy")
    print(f"fastest: {fastest.label()} ({fastest.result.total_time_hours:.2f} h)")
    print(f"highest accuracy: {best_acc.label()} ({best_acc.result.final_val_accuracy:.3f})")
    if args.metrics_out:
        write_telemetry(args.metrics_out, build_sweep_telemetry(telemetry_runs))
        print(f"telemetry written to {args.metrics_out} ({len(telemetry_runs)} runs)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    header, records = read_trace_jsonl(args.file)
    dropped = (header.get("counters") or {}).get("trace.dropped", 0)
    store = SpanStore.from_records(records, dropped=dropped)

    if args.wu:
        if args.wu not in store.lineages:
            known = ", ".join(sorted(store.lineages)[:8])
            raise SystemExit(f"unknown workunit {args.wu!r} (known: {known}, ...)")
        print("\n".join(store.describe_lineage(args.wu)))
        return 0

    counts = store.lineage_counts()
    fates = ", ".join(f"{k}={v}" for k, v in counts["fates"].items())
    print(
        f"{len(records)} records -> {len(store.spans)} spans, "
        f"{counts['total']} workunit lineages "
        f"({counts['complete']} complete, {counts['terminated']} terminated"
        + (f"; {fates}" if fates else "")
        + ")"
    )
    if dropped:
        print(f"warning: bounded trace dropped {dropped} records; history is partial")
    problems = store.lineage_problems()
    if problems:
        print(f"{len(problems)} lineage problem(s):")
        for problem in problems[:10]:
            print(f"  - {problem}")
    rows = [
        [name, stats["count"], round(stats["total_s"], 3),
         round(stats["mean_s"], 3), round(stats["p95_s"], 3)]
        for name, stats in store.hop_summary().items()
    ]
    print(render_table(["span", "n", "total s", "mean s", "p95 s"], rows,
                       title="span durations"))
    staleness = store.staleness_summary()
    if staleness["merges"]:
        print(
            f"staleness: {staleness['merges']} merges, mean lag "
            f"{staleness['mean']:.2f} versions, max {staleness['max']}"
        )

    if args.critical_path:
        path = store.critical_path()
        rows = [
            [
                i,
                hop.name,
                round(hop.start, 3),
                round(hop.end, 3),
                round(hop.duration, 3),
                hop.wu or "",
                hop.client or "",
            ]
            for i, hop in enumerate(path.hops)
        ]
        print(
            render_table(
                ["#", "hop", "start s", "end s", "dur s", "wu", "client"],
                rows,
                title=f"critical path ({format_hours(path.total_s)} total)",
            )
        )
        totals = [
            [name, round(seconds, 3), f"{100 * seconds / path.total_s:.1f}%"]
            for name, seconds in path.per_hop_totals().items()
        ] if path.total_s else []
        if totals:
            print(render_table(["hop", "total s", "share"], totals,
                               title="critical-path time by hop"))
        print(
            f"critical path: {len(path.hops)} hops, "
            f"{path.total_s:.3f}s total = wall clock to last epoch "
            f"({path.end_s:.3f}s)"
        )

    if args.perfetto:
        count = write_perfetto_trace(store, args.perfetto)
        print(f"perfetto trace written to {args.perfetto} ({count} events); "
              "load it at ui.perfetto.dev")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    payload = read_telemetry(args.file)
    if payload["schema"].endswith(".sweep"):
        print(sweep_dashboard(payload))
    else:
        print(telemetry_dashboard(payload))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "single": _cmd_single,
    "cost": _cmd_cost,
    "preempt-model": _cmd_preempt_model,
    "alpha-study": _cmd_alpha_study,
    "dashboard": _cmd_dashboard,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
