"""ASCII line charts — terminal-rendered figures.

No plotting backend is assumed anywhere in this repository; the benchmark
harness renders the paper's figures as ASCII charts into
``benchmarks/results/`` so the curve *shapes* (crossovers, plateaus,
orderings) are reviewable without leaving the terminal.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared-axes ASCII chart.

    Each series gets a marker from ``oxX*#@%&`` (legend appended).  Points
    are nearest-cell rasterized; later series overwrite earlier ones where
    they collide.
    """
    if not series:
        raise ConfigurationError("ascii_chart needs at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("chart too small to be legible")

    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1 or x.size == 0:
            raise ConfigurationError(f"series {name!r} must be equal-length 1-D")
        cleaned[name] = (x, y)

    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (x, y)) in enumerate(cleaned.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        cols = np.clip(
            ((x - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int),
            0,
            width - 1,
        )
        rows = np.clip(
            ((y - y_lo) / (y_hi - y_lo) * (height - 1)).round().astype(int),
            0,
            height - 1,
        )
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(" " * pad + "  " + x_axis)
    if x_label or y_label:
        lines.append(" " * pad + f"  x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(cleaned)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
