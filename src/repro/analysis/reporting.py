"""Markdown experiment reports from run results.

Turns one or more :class:`~repro.core.results.RunResult` objects into the
kind of summary EXPERIMENTS.md records: per-epoch tables, headline numbers,
pairwise comparisons (time-to-accuracy, final gap, smoothness).  Used by
the CLI and handy in notebooks/scripts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.results import RunResult
from .curves import crossover_time, smoothness, time_to_threshold
from .tables import format_hours, render_table

__all__ = ["run_summary_table", "comparison_table", "markdown_report"]


def run_summary_table(results: Sequence[RunResult]) -> str:
    """One row per run: headline accuracy/time/robustness numbers."""
    rows = []
    for result in results:
        counters = result.counters
        rows.append(
            [
                result.label,
                len(result.epochs),
                format_hours(result.total_time_s),
                round(result.final_val_accuracy, 3),
                round(result.best_val_accuracy(), 3),
                round(smoothness(result.val_accuracy()), 5),
                counters.get("timeouts", 0),
                counters.get("preemptions", 0),
                counters.get("lost_updates", 0),
            ]
        )
    return render_table(
        [
            "run",
            "epochs",
            "time",
            "final acc",
            "best acc",
            "fluctuation",
            "timeouts",
            "preempts",
            "lost upd",
        ],
        rows,
    )


def comparison_table(a: RunResult, b: RunResult, thresholds: Sequence[float]) -> str:
    """Pairwise race: who reaches each accuracy threshold first."""
    rows = []
    ta, va = a.times_hours() * 3600, a.val_accuracy()
    tb, vb = b.times_hours() * 3600, b.val_accuracy()
    for threshold in thresholds:
        hit_a = time_to_threshold(ta, va, threshold)
        hit_b = time_to_threshold(tb, vb, threshold)
        if hit_a is None and hit_b is None:
            winner = "neither"
        elif hit_a is None:
            winner = b.label
        elif hit_b is None:
            winner = a.label
        else:
            winner = a.label if hit_a <= hit_b else b.label
        rows.append(
            [
                f"{threshold:.2f}",
                format_hours(hit_a) if hit_a is not None else "never",
                format_hours(hit_b) if hit_b is not None else "never",
                winner,
            ]
        )
    return render_table(
        ["accuracy", a.label, b.label, "first"],
        rows,
        title=f"time-to-accuracy: {a.label} vs {b.label}",
    )


def markdown_report(
    results: Sequence[RunResult],
    title: str = "Experiment report",
    thresholds: Sequence[float] = (0.5, 0.6, 0.7),
) -> str:
    """Full markdown document for a set of runs."""
    lines: list[str] = [f"# {title}", "", "## Summary", "```"]
    lines.append(run_summary_table(results))
    lines.append("```")
    for result in results:
        lines.extend(["", f"## {result.label}", "```"])
        rows = [
            [
                rec.epoch,
                format_hours(rec.end_time_s),
                round(rec.val_accuracy_mean, 3),
                round(rec.val_accuracy_spread, 4),
                round(rec.test_accuracy, 3),
            ]
            for rec in result.epochs
        ]
        lines.append(
            render_table(["epoch", "time", "val acc", "spread", "test acc"], rows)
        )
        lines.append("```")
        lines.append(f"- stopped: {result.stopped_reason or 'n/a'}")
        for key, value in sorted(result.counters.items()):
            lines.append(f"- {key}: {value}")
    if len(results) == 2:
        lines.extend(["", "## Head-to-head", "```"])
        lines.append(comparison_table(results[0], results[1], thresholds))
        a, b = results
        cross = crossover_time(
            a.times_hours(), a.val_accuracy(), b.times_hours(), b.val_accuracy()
        )
        lines.append("```")
        if cross is not None:
            lines.append(f"- curves cross at ~{cross:.2f} h")
        else:
            lines.append("- no crossover in the common window")
    lines.append("")
    return "\n".join(lines)
