"""Curve analysis and table rendering for experiment results."""

from .ascii_plot import ascii_chart
from .curves import (
    auc_accuracy,
    crossover_time,
    final_gap,
    interpolate_to_grid,
    smoothness,
    time_to_threshold,
)
from .dashboard import sweep_dashboard, telemetry_dashboard
from .reporting import comparison_table, markdown_report, run_summary_table
from .tables import format_hours, format_pct, render_table

__all__ = [
    "ascii_chart",
    "telemetry_dashboard",
    "sweep_dashboard",
    "run_summary_table",
    "comparison_table",
    "markdown_report",
    "interpolate_to_grid",
    "time_to_threshold",
    "crossover_time",
    "smoothness",
    "final_gap",
    "auc_accuracy",
    "render_table",
    "format_hours",
    "format_pct",
]
