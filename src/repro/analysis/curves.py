"""Accuracy-vs-time curve analysis (the quantities Figs. 2–6 discuss).

The paper reads several properties off its plots: which configuration
reaches an accuracy first, where two α curves cross (§IV-C), how wide the
per-epoch error bars are, and how *smooth* the distributed curve is versus
the single-instance one (§IV-C's third observation on Fig. 6).  These are
implemented as plain functions over (time, accuracy) arrays so both the
benchmark harness and the tests can assert on them.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "interpolate_to_grid",
    "time_to_threshold",
    "crossover_time",
    "smoothness",
    "final_gap",
    "auc_accuracy",
]


def _validate(times: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.shape != values.shape or times.ndim != 1:
        raise ConfigurationError(
            f"curve arrays must be 1-D and equal length, got {times.shape} vs {values.shape}"
        )
    if len(times) == 0:
        raise ConfigurationError("empty curve")
    if np.any(np.diff(times) < 0):
        raise ConfigurationError("times must be non-decreasing")
    return times, values


def interpolate_to_grid(
    times: np.ndarray, values: np.ndarray, grid: np.ndarray
) -> np.ndarray:
    """Linear interpolation of a curve onto a common time grid.

    Points before the first sample clamp to the first value, after the last
    to the last (training curves are step-extended, not extrapolated).
    """
    times, values = _validate(times, values)
    return np.interp(np.asarray(grid, dtype=np.float64), times, values)


def time_to_threshold(
    times: np.ndarray, values: np.ndarray, threshold: float
) -> float | None:
    """First time the curve reaches ``threshold`` (linear interp between
    epoch samples); None if it never does."""
    times, values = _validate(times, values)
    above = values >= threshold
    if not above.any():
        return None
    idx = int(np.argmax(above))
    if idx == 0:
        return float(times[0])
    t0, t1 = times[idx - 1], times[idx]
    v0, v1 = values[idx - 1], values[idx]
    if v1 == v0:
        return float(t1)
    frac = (threshold - v0) / (v1 - v0)
    return float(t0 + frac * (t1 - t0))


def crossover_time(
    times_a: np.ndarray,
    values_a: np.ndarray,
    times_b: np.ndarray,
    values_b: np.ndarray,
    grid_points: int = 400,
) -> float | None:
    """Time at which curve A, initially above curve B, is overtaken by B
    (or vice versa): the first sign change of (A − B) on a common grid.

    Returns None when one curve dominates throughout.  This is the §IV-C
    "trend reverses" moment between α = 0.7 and α = 0.95.
    """
    ta, va = _validate(times_a, values_a)
    tb, vb = _validate(times_b, values_b)
    lo = max(ta[0], tb[0])
    hi = min(ta[-1], tb[-1])
    if hi <= lo:
        return None
    grid = np.linspace(lo, hi, grid_points)
    diff = interpolate_to_grid(ta, va, grid) - interpolate_to_grid(tb, vb, grid)
    signs = np.sign(diff)
    nonzero = signs != 0
    if not nonzero.any():
        return None
    first = signs[nonzero][0]
    flips = np.flatnonzero(nonzero & (signs != first) & (signs != 0))
    if len(flips) == 0:
        return None
    return float(grid[flips[0]])


def smoothness(values: np.ndarray) -> float:
    """Fluctuation metric: mean absolute *non-monotone* increment.

    A perfectly monotone learning curve scores 0; dips and oscillations
    raise the score.  The paper observes the distributed curve is smoother
    (fewer fluctuations) than the single-instance one — lower is smoother.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        return 0.0
    increments = np.diff(values)
    dips = increments[increments < 0]
    return float(-dips.sum() / (values.size - 1)) + 0.0


def final_gap(values_a: np.ndarray, values_b: np.ndarray, last_k: int = 3) -> float:
    """Mean difference (A − B) over the last ``last_k`` samples of each curve."""
    a = np.asarray(values_a, dtype=np.float64)[-last_k:]
    b = np.asarray(values_b, dtype=np.float64)[-last_k:]
    return float(a.mean() - b.mean())


def auc_accuracy(times: np.ndarray, values: np.ndarray) -> float:
    """Time-normalized area under the accuracy curve (higher = learns
    earlier); trapezoidal rule."""
    times, values = _validate(times, values)
    if times[-1] == times[0]:
        return float(values[0])
    return float(np.trapezoid(values, times) / (times[-1] - times[0]))
