"""Plain-text table rendering for the benchmark harness.

Each benchmark prints the rows/series the corresponding paper table or
figure reports; this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_hours", "format_pct"]


def format_hours(seconds: float) -> str:
    """Seconds → 'H.HH h' (the paper's axes are in hours)."""
    return f"{seconds / 3600.0:.2f} h"


def format_pct(fraction: float) -> str:
    """Fraction → 'NN.N%'."""
    return f"{100.0 * fraction:.1f}%"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numbers are formatted with 4 significant decimals; everything else via
    ``str``.  Returns the table as a string (callers print it so pytest -s
    shows the reproduced figure data).
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
