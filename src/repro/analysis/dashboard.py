"""ASCII dashboards over exported run telemetry.

Renders a ``repro.telemetry`` document (see :mod:`repro.obs.telemetry`)
as terminal-readable panels: the accuracy curve, counter and
latency-percentile tables, per-component timers, the wall-clock profile
and the audit verdict.  This is the read side of ``repro run
--metrics-out``: everything here works from the JSON alone, no live
runner required.
"""

from __future__ import annotations

from typing import Any

from .ascii_plot import ascii_chart
from .tables import format_hours, render_table

__all__ = ["telemetry_dashboard", "sweep_dashboard"]


def _header(payload: dict[str, Any]) -> list[str]:
    config = payload.get("config", {})
    lines = [
        f"run {payload['label']}  (seed {payload.get('seed')}, "
        f"schema v{payload['schema_version']})",
        f"stopped: {payload['stopped_reason']}  "
        f"after {format_hours(payload['total_time_s'])} simulated  "
        f"({len(payload['epochs'])} epochs)",
    ]
    if config:
        lines.append(
            f"substrate: {config.get('num_param_servers')} PS / "
            f"{config.get('num_clients')} clients / "
            f"T{config.get('max_concurrent_subtasks')}, "
            f"{config.get('num_shards')} shards, "
            f"store={config.get('store_kind')}, rule={config.get('rule')}"
        )
    return lines


def _accuracy_panel(payload: dict[str, Any]) -> list[str]:
    epochs = payload["epochs"]
    if not epochs:
        return []
    hours = [e["end_time_s"] / 3600.0 for e in epochs]
    chart = ascii_chart(
        {
            "val": (hours, [e["val_accuracy_mean"] for e in epochs]),
            "test": (hours, [e["test_accuracy"] for e in epochs]),
        },
        width=64,
        height=12,
        title="accuracy vs simulated hours",
        x_label="hours",
        y_label="acc",
    )
    return [chart]


def _counters_panel(payload: dict[str, Any]) -> list[str]:
    counters = payload.get("counters") or {}
    if not counters:
        return []
    rows = [[name, value] for name, value in sorted(counters.items())]
    return [render_table(["counter", "value"], rows, title="run counters")]


def _histograms_panel(payload: dict[str, Any]) -> list[str]:
    metrics = payload.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    rows = []
    for name, snap in sorted(histograms.items()):
        if not snap.get("count"):
            continue
        rows.append(
            [
                name,
                snap["count"],
                snap["mean"],
                snap["p50"],
                snap["p95"],
                snap["p99"],
                snap["max"],
            ]
        )
    if not rows:
        return []
    return [
        render_table(
            ["histogram", "n", "mean", "p50", "p95", "p99", "max"],
            rows,
            title="latency distributions (simulated seconds)",
        )
    ]


def _timers_panel(payload: dict[str, Any]) -> list[str]:
    metrics = payload.get("metrics") or {}
    timers = metrics.get("timers") or {}
    rows = [
        [name, snap["count"], snap["total_s"], snap["exclusive_s"]]
        for name, snap in sorted(timers.items())
    ]
    if not rows:
        return []
    return [
        render_table(
            ["timer", "spans", "total s", "exclusive s"],
            rows,
            title="component timers (simulated clock)",
        )
    ]


def _profile_panel(payload: dict[str, Any]) -> list[str]:
    profile = payload.get("profile")
    if not profile:
        return []
    rows = [
        [label, stats["events"], round(stats["wall_s"], 4)]
        for label, stats in profile["by_label"].items()
    ]
    rows.append(["TOTAL", profile["total_events"], round(profile["total_wall_s"], 4)])
    return [
        render_table(
            ["event label", "events", "wall s"],
            rows,
            title="wall-clock profile (real seconds per event-label)",
        )
    ]


def _spans_panel(payload: dict[str, Any]) -> list[str]:
    spans = payload.get("spans")
    if not spans:
        return []
    lines: list[str] = []
    lineages = spans.get("lineages") or {}
    fates = ", ".join(f"{k}={v}" for k, v in (lineages.get("fates") or {}).items())
    lines.append(
        f"lineages: {lineages.get('total', 0)} workunits — "
        f"{lineages.get('complete', 0)} complete, "
        f"{lineages.get('terminated', 0)} terminated"
        + (f" ({fates})" if fates else "")
    )
    problems = spans.get("lineage_problems") or []
    if problems:
        lines.append(f"lineage problems: {len(problems)}")
        lines.extend(f"  - {p}" for p in problems[:5])
    path = spans.get("critical_path") or {}
    if path.get("per_hop_totals"):
        total = path.get("total_s", 0.0)
        rows = []
        for name, seconds in path["per_hop_totals"].items():
            share = 100.0 * seconds / total if total else 0.0
            rows.append([name, round(seconds, 3), f"{share:.1f}%"])
        lines.append(
            render_table(
                ["hop", "seconds", "share"],
                rows,
                title=(
                    f"critical path ({path.get('hop_count', 0)} hops, "
                    f"{format_hours(total)} to last epoch)"
                ),
            )
        )
    staleness = spans.get("staleness") or {}
    if staleness.get("merges"):
        lines.append(
            f"staleness: {staleness['merges']} merges, "
            f"mean lag {staleness['mean']:.2f} versions, max {staleness['max']}"
        )
    stragglers = spans.get("stragglers") or {}
    rows = []
    for client, hops in stragglers.items():
        train = hops.get("client.train")
        if train:
            rows.append(
                [client, train["count"], train["p50_s"], train["p95_s"], train["max_s"]]
            )
    if rows:
        lines.append(
            render_table(
                ["client", "trains", "p50 s", "p95 s", "max s"],
                rows,
                title="straggler attribution (client.train durations)",
            )
        )
    return lines


def _audit_panel(payload: dict[str, Any]) -> list[str]:
    audit = payload.get("audit")
    if audit is None:
        return ["audit: not attached"]
    if audit["ok"]:
        return [
            f"audit: OK — {audit['checks']} checks over "
            f"{audit['records_seen']} trace records, 0 violations"
        ]
    lines = [f"audit: FAILED — {len(audit['violations'])} violation(s):"]
    lines.extend(f"  - {v}" for v in audit["violations"])
    return lines


def telemetry_dashboard(payload: dict[str, Any]) -> str:
    """Render one run-telemetry document as a multi-panel ASCII dashboard."""
    panels: list[str] = []
    panels.extend(_header(payload))
    for build in (
        _accuracy_panel,
        _counters_panel,
        _histograms_panel,
        _timers_panel,
        _profile_panel,
        _spans_panel,
        _audit_panel,
    ):
        part = build(payload)
        if part:
            panels.append("")
            panels.extend(part)
    return "\n".join(panels)


def sweep_dashboard(payload: dict[str, Any]) -> str:
    """Render a sweep-telemetry document as a per-point summary table."""
    rows = []
    for run in payload["runs"]:
        audit = run.get("audit")
        epochs = run["epochs"]
        rows.append(
            [
                run["label"],
                len(epochs),
                epochs[-1]["val_accuracy_mean"] if epochs else float("nan"),
                format_hours(run["total_time_s"]),
                ("OK" if audit["ok"] else "FAIL") if audit else "-",
                run["digest"][:12],
            ]
        )
    return render_table(
        ["run", "epochs", "final acc", "time", "audit", "digest"],
        rows,
        title=f"sweep telemetry ({len(rows)} runs, schema "
        f"v{payload['schema_version']})",
    )
