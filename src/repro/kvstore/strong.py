"""Strongly consistent store (the MySQL analogue, §IV-D).

Read-modify-write transactions acquire a per-key lock and execute in strict
FIFO order: no update is ever lost, but concurrent transactions queue, so
under contention the effective per-update latency grows — the scalability
penalty the paper measures (1.29 s vs 0.87 s per op, 1.5× slower, ~14 min
over a 2 000-update CIFAR10 job).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .base import TXN_ABORT, KVStore, payload_nbytes

__all__ = ["StrongStore"]


class StrongStore(KVStore):
    """Serializable per-key FIFO key-value store."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._locks: dict[str, bool] = {}
        self._waiters: dict[str, deque] = {}
        self.max_queue_depth = 0
        self.total_wait_time = 0.0

    def read_modify_write(
        self,
        key: str,
        transform: Callable[[Any], Any],
        on_done: Callable[[Any], None] | None = None,
        nbytes: int | None = None,
    ) -> None:
        self.updates += 1
        enqueue_time = self.sim.now

        def run_transaction() -> None:
            self.total_wait_time += self.sim.now - enqueue_time
            # Value is read *inside* the critical section: serializable.
            current = self.get_now(key)
            size = payload_nbytes(current, nbytes)
            delay = self._chaos_delay(self.latency.update(size), "update")

            def commit() -> None:
                new_value = transform(current)
                if new_value is TXN_ABORT:
                    self._emit("kv.txn_abort", key=key)
                    self._release(key)
                    return
                self.put_now(key, new_value)
                self._emit("kv.update", key=key, latency=delay, lost=0)
                if on_done is not None:
                    on_done(new_value)
                self._release(key)

            self.sim.schedule(delay, commit, label=f"{self.name}:rmw")

        self._acquire(key, run_transaction)

    # -- per-key FIFO lock ------------------------------------------------
    def _acquire(self, key: str, critical_section: Callable[[], None]) -> None:
        if not self._locks.get(key, False):
            self._locks[key] = True
            critical_section()
        else:
            queue = self._waiters.setdefault(key, deque())
            queue.append(critical_section)
            self.max_queue_depth = max(self.max_queue_depth, len(queue))

    def _release(self, key: str) -> None:
        queue = self._waiters.get(key)
        if queue:
            nxt = queue.popleft()
            nxt()  # lock passes directly to the next waiter
        else:
            self._locks[key] = False

    def queue_depth(self, key: str) -> int:
        """Transactions currently waiting on ``key``'s lock."""
        queue = self._waiters.get(key)
        return len(queue) if queue else 0
