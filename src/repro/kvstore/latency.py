"""Per-operation latency models for the parameter stores.

The paper measures a full parameter-update transaction (a ~21.2 MB value)
at **0.87 s on Redis** and **1.29 s on MySQL** (§IV-D).  We decompose each
operation into a fixed overhead plus a per-byte cost and calibrate both
profiles so that a 21.2 MB value reproduces the paper's numbers exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "StoreLatency",
    "redis_like_latency",
    "mysql_like_latency",
    "PAPER_PARAM_BYTES",
    "PAPER_REDIS_UPDATE_S",
    "PAPER_MYSQL_UPDATE_S",
]

# Anchors from §IV-A / §IV-D of the paper.
PAPER_PARAM_BYTES = int(21.2 * 1024 * 1024)  # the 21.2 MB compressed .h5 file
PAPER_REDIS_UPDATE_S = 0.87
PAPER_MYSQL_UPDATE_S = 1.29


@dataclass(frozen=True)
class StoreLatency:
    """Affine latency model: ``base + nbytes * per_byte`` per operation.

    ``write_factor`` scales writes relative to reads (strong-consistency
    stores pay for WAL + index maintenance on writes).
    """

    base_s: float
    per_byte_s: float
    write_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.per_byte_s < 0 or self.write_factor <= 0:
            raise ConfigurationError(f"invalid latency model {self}")

    def read(self, nbytes: int) -> float:
        """Seconds to read a value of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"negative payload size {nbytes}")
        return self.base_s + nbytes * self.per_byte_s

    def write(self, nbytes: int) -> float:
        """Seconds to write a value of ``nbytes`` (scaled by write_factor)."""
        if nbytes < 0:
            raise ConfigurationError(f"negative payload size {nbytes}")
        return (self.base_s + nbytes * self.per_byte_s) * self.write_factor

    def update(self, nbytes: int) -> float:
        """One read-modify-write round on a value of ``nbytes``.

        The paper's quoted figures are for the full update transaction, so
        this is the calibration target.  We attribute half the transaction
        to the read and half (scaled) to the write.
        """
        return 0.5 * self.read(nbytes) + 0.5 * self.write(nbytes)

    def scaled(self, factor: float) -> "StoreLatency":
        """A profile with every operation slowed by ``factor`` (chaos
        degraded-latency windows; factor must be positive)."""
        if factor <= 0:
            raise ConfigurationError(f"latency scale factor must be positive, got {factor}")
        return StoreLatency(
            base_s=self.base_s * factor,
            per_byte_s=self.per_byte_s * factor,
            write_factor=self.write_factor,
        )


def _calibrated(total_update_s: float, base_s: float, write_factor: float) -> StoreLatency:
    """Solve per_byte so update(PAPER_PARAM_BYTES) == total_update_s."""
    # update(n) = 0.5*(base + n*pb) + 0.5*(base + n*pb)*wf
    #           = base*(1+wf)/2 + n*pb*(1+wf)/2
    scale = (1.0 + write_factor) / 2.0
    per_byte = (total_update_s - base_s * scale) / (PAPER_PARAM_BYTES * scale)
    if per_byte < 0:
        raise ConfigurationError("base latency exceeds calibration target")
    return StoreLatency(base_s=base_s, per_byte_s=per_byte, write_factor=write_factor)


def redis_like_latency() -> StoreLatency:
    """Main-memory store profile: tiny fixed cost, calibrated to 0.87 s."""
    return _calibrated(PAPER_REDIS_UPDATE_S, base_s=0.002, write_factor=1.0)


def mysql_like_latency() -> StoreLatency:
    """Relational store profile: higher fixed cost and write amplification,
    calibrated to 1.29 s (the LONGBLOB transaction of §IV-D)."""
    return _calibrated(PAPER_MYSQL_UPDATE_S, base_s=0.020, write_factor=1.35)
