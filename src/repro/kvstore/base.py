"""Key-value store interface shared by the eventual and strong stores.

Stores are *simulation-aware active objects*: mutating operations complete
asynchronously after a modeled latency on the shared
:class:`~repro.simulation.engine.Simulator`.  A synchronous face
(``get_now`` / ``put_now``) exists for setup code and tests.

Values are arbitrary Python objects; the latency model needs a byte size,
which is taken from ``value.nbytes`` for arrays, ``len()`` for bytes, or a
caller-provided override.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import KVStoreError
from ..simulation.chaos import StoreFaultWindow
from ..simulation.engine import Simulator
from ..simulation.tracing import Trace
from .latency import StoreLatency

__all__ = ["payload_nbytes", "KVStore", "TXN_ABORT"]

# Sentinel a read-modify-write transform may return to abort the
# transaction: nothing is written, the version is not bumped, and the
# completion callback does not fire.  Used by the chaos fabric when a
# parameter server crashes before its merge commits.
TXN_ABORT = object()


def payload_nbytes(value: Any, override: int | None = None) -> int:
    """Byte size of a value for latency accounting."""
    if override is not None:
        return override
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    # Fallback: small control values (counters, flags).
    return 64


class KVStore:
    """Abstract asynchronous key-value store."""

    def __init__(
        self,
        sim: Simulator,
        latency: StoreLatency,
        name: str = "kvstore",
        trace: Trace | None = None,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.name = name
        self.trace = trace
        self._data: dict[str, Any] = {}
        self._versions: dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        self.updates = 0
        # Chaos fault windows (outages / degraded latency); see
        # set_fault_windows.  Empty tuple = healthy store.
        self.fault_windows: tuple[StoreFaultWindow, ...] = ()
        self.outage_blocked_ops = 0
        self.degraded_ops = 0

    # -- chaos fault windows ----------------------------------------------
    def set_fault_windows(self, windows: tuple[StoreFaultWindow, ...]) -> None:
        """Install outage / degraded-latency windows (chaos injection)."""
        self.fault_windows = tuple(windows)

    def _chaos_delay(self, delay: float, op: str) -> float:
        """Operation latency adjusted for any active fault window.

        During a hard outage the operation blocks until the window lifts
        and *then* pays its normal latency; during a degraded window the
        latency is multiplied.  Overlapping windows compound.
        """
        now = self.sim.now
        for window in self.fault_windows:
            if not window.covers(now):
                continue
            if window.latency_factor is None:
                self.outage_blocked_ops += 1
                self._emit(
                    "kv.outage", op=op, blocked_s=window.end_s - now
                )
                delay += window.end_s - now
            else:
                self.degraded_ops += 1
                self._emit("kv.degraded", op=op, factor=window.latency_factor)
                delay *= window.latency_factor
        return delay

    # -- synchronous face (setup/test use; charges no simulated time) ---
    def get_now(self, key: str) -> Any:
        """Synchronous read (no simulated latency); raises on missing key."""
        try:
            return self._data[key]
        except KeyError:
            raise KVStoreError(f"{self.name}: missing key {key!r}") from None

    def put_now(self, key: str, value: Any) -> None:
        """Synchronous write (no simulated latency); bumps the key version."""
        self._data[key] = value
        self._versions[key] = self._versions.get(key, 0) + 1

    def contains(self, key: str) -> bool:
        """Whether ``key`` currently has a committed value."""
        return key in self._data

    def version(self, key: str) -> int:
        """Monotonic per-key write counter (0 if never written)."""
        return self._versions.get(key, 0)

    def keys(self) -> list[str]:
        """Sorted list of committed keys."""
        return sorted(self._data)

    # -- asynchronous face ------------------------------------------------
    def read(
        self, key: str, on_done: Callable[[Any], None], nbytes: int | None = None
    ) -> None:
        """Read ``key``; ``on_done(value)`` fires after the read latency."""
        value = self.get_now(key)
        self.reads += 1
        delay = self._chaos_delay(self.latency.read(payload_nbytes(value, nbytes)), "read")
        self._emit("kv.read", key=key, latency=delay)
        self.sim.schedule(delay, lambda: on_done(value), label=f"{self.name}:read")

    def write(
        self,
        key: str,
        value: Any,
        on_done: Callable[[], None] | None = None,
        nbytes: int | None = None,
    ) -> None:
        """Write ``key``; visible (and ``on_done`` fired) after write latency."""
        self.writes += 1
        delay = self._chaos_delay(self.latency.write(payload_nbytes(value, nbytes)), "write")
        self._emit("kv.write", key=key, latency=delay)

        def commit() -> None:
            self.put_now(key, value)
            if on_done is not None:
                on_done()

        self.sim.schedule(delay, commit, label=f"{self.name}:write")

    def read_modify_write(
        self,
        key: str,
        transform: Callable[[Any], Any],
        on_done: Callable[[Any], None] | None = None,
        nbytes: int | None = None,
    ) -> None:
        """Atomically-or-not apply ``transform`` to the stored value.

        Consistency semantics are subclass-defined: the strong store
        serializes transactions per key; the eventual store lets them race
        (lost updates possible).  ``on_done(new_value)`` fires at commit.
        """
        raise NotImplementedError

    # -- instrumentation ---------------------------------------------------
    def _emit(self, kind: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.emit(self.sim.now, kind, store=self.name, **fields)
