"""Eventually consistent main-memory store (the Redis analogue, §III-D).

Read-modify-write transactions do **not** take a lock: each transaction
snapshots the value at start, computes locally, and blind-writes the result
after the modeled latency.  When two transactions on the same key overlap,
the later commit clobbers the earlier one — a *lost update*.  The store
counts them, because §III-D's scalability argument rests on distributed
training tolerating exactly this loss.

``lost_updates`` is a **conservative upper bound** on truly lost effects:
it counts every clobbered committed version once, but a clobbered write's
effect can still survive when a third concurrent transaction snapshotted
it before the clobber.  The bound is what matters for the §III-D
trade-off analysis ("at most this many updates were dropped").
"""

from __future__ import annotations

from typing import Any, Callable

from .base import TXN_ABORT, KVStore, payload_nbytes

__all__ = ["EventualStore"]


class EventualStore(KVStore):
    """Lock-free last-writer-wins key-value store."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.lost_updates = 0
        self.in_flight: dict[str, int] = {}
        # Versions whose effect has already been counted as clobbered, so
        # overlapping stale commits don't double-count the same victim.
        self._counted_lost: dict[str, set[int]] = {}

    def read_modify_write(
        self,
        key: str,
        transform: Callable[[Any], Any],
        on_done: Callable[[Any], None] | None = None,
        nbytes: int | None = None,
    ) -> None:
        snapshot = self.get_now(key)
        snapshot_version = self.version(key)
        self.updates += 1
        self.in_flight[key] = self.in_flight.get(key, 0) + 1
        size = payload_nbytes(snapshot, nbytes)
        delay = self._chaos_delay(self.latency.update(size), "update")

        def commit() -> None:
            self.in_flight[key] -= 1
            new_value = transform(snapshot)
            if new_value is TXN_ABORT:
                # Aborted (e.g. the merging parameter server crashed before
                # commit): no write, no version bump, no lost-update blame.
                self._emit("kv.txn_abort", key=key)
                return
            current = self.version(key)
            newly_lost = 0
            if current > snapshot_version:
                # Our write is based on a stale snapshot: intervening
                # commits' effects are overwritten.  Count each victim
                # version once, even under many-way races.
                counted = self._counted_lost.setdefault(key, set())
                for version in range(snapshot_version + 1, current + 1):
                    if version not in counted:
                        counted.add(version)
                        newly_lost += 1
                self.lost_updates += newly_lost
                if newly_lost:
                    self._emit("kv.lost_update", key=key, clobbered=newly_lost)
            self.put_now(key, new_value)
            self._emit("kv.update", key=key, latency=delay, lost=newly_lost)
            if on_done is not None:
                on_done(new_value)

        self.sim.schedule(delay, commit, label=f"{self.name}:rmw")

    def concurrent_transactions(self, key: str) -> int:
        """Number of in-flight RMW transactions touching ``key``."""
        return self.in_flight.get(key, 0)
