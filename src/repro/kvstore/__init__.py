"""Parameter-store substrate: eventual (Redis-like) vs strong (MySQL-like)."""

from .base import KVStore, payload_nbytes
from .eventual import EventualStore
from .latency import (
    PAPER_MYSQL_UPDATE_S,
    PAPER_PARAM_BYTES,
    PAPER_REDIS_UPDATE_S,
    StoreLatency,
    mysql_like_latency,
    redis_like_latency,
)
from .strong import StrongStore

__all__ = [
    "KVStore",
    "payload_nbytes",
    "EventualStore",
    "StrongStore",
    "StoreLatency",
    "redis_like_latency",
    "mysql_like_latency",
    "PAPER_PARAM_BYTES",
    "PAPER_REDIS_UPDATE_S",
    "PAPER_MYSQL_UPDATE_S",
]
