"""Network latency / bandwidth model (§III-B: variable network latency).

Every client owns a :class:`NetworkLink` to the server.  A file transfer of
``n`` bytes costs::

    round_trip_latency + n / bandwidth      (+ lognormal jitter)

Volunteer nodes connect over WAN, so the default client profiles have
higher latency and lower bandwidth than the server-side LAN.  BOINC's
server-side compression (§III-B) is modelled by charging for the compressed
byte count when the file is marked compressible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["NetworkLink", "wan_link", "lan_link"]


@dataclass
class NetworkLink:
    """One direction-symmetric network path between a client and the server.

    Parameters
    ----------
    latency_s:
        One-way base latency in seconds (RTT/2).
    bandwidth_bps:
        Sustained throughput in bytes per second.
    jitter:
        Lognormal sigma applied multiplicatively to each transfer's total
        time; 0 disables jitter.
    """

    latency_s: float
    bandwidth_bps: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bps <= 0 or self.jitter < 0:
            raise ConfigurationError(f"invalid link parameters: {self}")

    def transfer_time(
        self,
        nbytes: int,
        rng: np.random.Generator | None = None,
        now: float = 0.0,
    ) -> float:
        """Seconds to move ``nbytes`` over this link (including handshake).

        ``now`` is accepted for interface compatibility with time-varying
        links (:class:`~repro.simulation.congestion.CongestedLink`); a plain
        link is stationary and ignores it.
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        base = 2.0 * self.latency_s + nbytes / self.bandwidth_bps
        if self.jitter > 0 and rng is not None:
            base *= float(rng.lognormal(mean=0.0, sigma=self.jitter))
        return base

    def handshake_time(self) -> float:
        """Seconds to learn a connection cannot be established (one RTT).

        Used by the chaos fabric: a transfer blocked by a network partition
        fails fast after the handshake instead of charging the full
        transfer duration.
        """
        return 2.0 * self.latency_s

    def scaled(self, factor: float) -> "NetworkLink":
        """A link with bandwidth scaled by ``factor`` (e.g. congestion)."""
        return NetworkLink(self.latency_s, self.bandwidth_bps * factor, self.jitter)


def wan_link(
    bandwidth_gbps: float = 0.1, latency_ms: float = 40.0, jitter: float = 0.15
) -> NetworkLink:
    """Typical volunteer WAN path: tens of ms latency, sub-Gbps throughput."""
    return NetworkLink(
        latency_s=latency_ms / 1e3,
        bandwidth_bps=bandwidth_gbps * 1e9 / 8.0,
        jitter=jitter,
    )


def lan_link(bandwidth_gbps: float = 10.0, latency_ms: float = 0.5) -> NetworkLink:
    """Datacenter LAN path (the paper's same-region cloud instances)."""
    return NetworkLink(
        latency_s=latency_ms / 1e3,
        bandwidth_bps=bandwidth_gbps * 1e9 / 8.0,
        jitter=0.02,
    )
