"""Discrete-event simulation substrate: clock, resources, network, preemption."""

from .adversary import (
    ATTACK_KINDS,
    AdversaryBehavior,
    AdversaryFabric,
    AdversaryPlan,
    SybilFleet,
    TamperedUpdate,
)
from .chaos import (
    ChaosPlan,
    PartitionSchedule,
    PartitionWindow,
    ServerCrash,
    StoreFaultWindow,
    TransferFaultPlan,
)
from .congestion import CongestedLink, CongestionSchedule, diurnal_schedule
from .engine import Simulator
from .events import EventHandle, EventQueue
from .network import NetworkLink, lan_link, wan_link
from .preemption import (
    BernoulliSubtaskModel,
    ExponentialLifetime,
    interruption_rate_per_hour,
)
from .resources import (
    TABLE1_CLIENTS,
    TABLE1_SERVER,
    ComputeResource,
    ComputeTask,
    InstanceSpec,
)
from .rng import RngRegistry, stable_name_hash
from .tracing import Trace, TraceRecord

__all__ = [
    "ATTACK_KINDS",
    "AdversaryBehavior",
    "AdversaryFabric",
    "AdversaryPlan",
    "SybilFleet",
    "TamperedUpdate",
    "ChaosPlan",
    "TransferFaultPlan",
    "PartitionWindow",
    "PartitionSchedule",
    "StoreFaultWindow",
    "ServerCrash",
    "CongestedLink",
    "CongestionSchedule",
    "diurnal_schedule",
    "Simulator",
    "EventHandle",
    "EventQueue",
    "NetworkLink",
    "lan_link",
    "wan_link",
    "InstanceSpec",
    "ComputeResource",
    "ComputeTask",
    "TABLE1_SERVER",
    "TABLE1_CLIENTS",
    "ExponentialLifetime",
    "BernoulliSubtaskModel",
    "interruption_rate_per_hour",
    "RngRegistry",
    "stable_name_hash",
    "Trace",
    "TraceRecord",
]
