"""Compute devices: heterogeneous specs and a processor-sharing model.

Two pieces live here:

* :class:`InstanceSpec` — the static description of a machine (Table I of
  the paper: vCPUs, clock, RAM, network bandwidth) and the derived
  compute rate;
* :class:`ComputeResource` — a processor-sharing queue bound to a
  :class:`~repro.simulation.engine.Simulator`.  It is what makes the
  "simultaneous subtasks per client" (Tn) dimension physical: while the
  number of running tasks is at most the core count each task runs at
  one core's speed, beyond that the machine is time-sliced and a mild
  contention penalty kicks in — reproducing the paper's observation that
  client throughput stops improving past T8 on 8-vCPU instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, SimulationError
from .engine import Simulator
from .events import EventHandle
from .network import NetworkLink, lan_link, wan_link

__all__ = ["InstanceSpec", "TABLE1_SERVER", "TABLE1_CLIENTS", "ComputeResource", "ComputeTask"]


@dataclass(frozen=True)
class InstanceSpec:
    """Static description of a compute instance (paper Table I row).

    ``compute_rate`` is expressed in abstract *work units per second*; one
    work unit is calibrated so that the paper's reference subtask (one
    local training pass over a 1 000-image CIFAR10 shard) is ~144 work
    units, making t_e ≈ 2.4 min on a reference core (§IV-E).
    """

    name: str
    vcpus: int
    clock_ghz: float
    ram_gb: float
    network_gbps: float
    core_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.clock_ghz <= 0 or self.ram_gb <= 0:
            raise ConfigurationError(f"invalid instance spec {self}")

    @property
    def per_core_rate(self) -> float:
        """Work units per second delivered by one core.

        Normalized so a 2.4 GHz core with efficiency 1.0 delivers exactly
        1.0 unit/s; heterogeneity enters through the clock ratio.
        """
        return self.core_efficiency * self.clock_ghz / 2.4

    @property
    def total_rate(self) -> float:
        """Work units per second with all cores busy."""
        return self.vcpus * self.per_core_rate

    def default_link(self, is_server: bool = False) -> NetworkLink:
        """A network link consistent with the spec's bandwidth column."""
        if is_server:
            return lan_link(bandwidth_gbps=self.network_gbps)
        return wan_link(bandwidth_gbps=self.network_gbps, latency_ms=20.0)


# Paper Table I: the server and the four client instance types.
TABLE1_SERVER = InstanceSpec("server", vcpus=8, clock_ghz=2.3, ram_gb=61, network_gbps=10)
TABLE1_CLIENTS = (
    InstanceSpec("client-a", vcpus=8, clock_ghz=2.2, ram_gb=32, network_gbps=5),
    InstanceSpec("client-b", vcpus=8, clock_ghz=2.5, ram_gb=32, network_gbps=5),
    InstanceSpec("client-c", vcpus=8, clock_ghz=2.8, ram_gb=15, network_gbps=2),
    InstanceSpec("client-d", vcpus=16, clock_ghz=2.8, ram_gb=30, network_gbps=2),
)


@dataclass
class ComputeTask:
    """A unit of work admitted to a :class:`ComputeResource`."""

    work_remaining: float
    on_complete: object  # Callable[[], None]; dataclass keeps repr simple
    label: str = ""
    done: bool = False
    cancelled: bool = False
    _order: int = field(default=0, repr=False)


class ComputeResource:
    """Processor-sharing compute model over a simulator clock.

    With ``k`` active tasks on a machine of ``cores`` cores:

    * ``k <= cores``: each task progresses at ``per_core_rate``;
    * ``k > cores``: the full machine rate is divided evenly, degraded by a
      contention factor ``1 / (1 + contention * (k - cores))``.

    All active tasks therefore always share one common rate, so completion
    order equals remaining-work order and a single pending completion event
    suffices.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: InstanceSpec,
        contention: float = 0.05,
        name: str = "",
    ) -> None:
        if contention < 0:
            raise ConfigurationError("contention must be non-negative")
        self.sim = sim
        self.spec = spec
        self.contention = contention
        self.name = name or spec.name
        self._active: list[ComputeTask] = []
        self._last_update = sim.now
        self._completion_event: EventHandle | None = None
        self._order_counter = 0
        self.alive = True
        self.completed_count = 0
        self.busy_time = 0.0  # integral of (active tasks > 0) over sim time

    # -- rate law ---------------------------------------------------------
    def per_task_rate(self, k: int | None = None) -> float:
        """Work units/second each active task receives with ``k`` active."""
        if k is None:
            k = len(self._active)
        if k == 0:
            return 0.0
        cores = self.spec.vcpus
        if k <= cores:
            return self.spec.per_core_rate
        degraded_total = self.spec.total_rate / (1.0 + self.contention * (k - cores))
        return degraded_total / k

    def throughput(self, k: int) -> float:
        """Aggregate work units/second with ``k`` active tasks."""
        return k * self.per_task_rate(k)

    # -- public API -------------------------------------------------------
    def submit(self, work: float, on_complete, label: str = "") -> ComputeTask:
        """Admit a task needing ``work`` units; ``on_complete()`` fires when done."""
        if not self.alive:
            raise SimulationError(f"submit() on terminated resource {self.name!r}")
        if work <= 0:
            raise ConfigurationError(f"task work must be positive, got {work}")
        self._advance()
        task = ComputeTask(work, on_complete, label=label, _order=self._order_counter)
        self._order_counter += 1
        self._active.append(task)
        self._reschedule()
        return task

    def cancel(self, task: ComputeTask) -> None:
        """Remove a task before completion (e.g. its workunit was aborted)."""
        if task.done or task.cancelled:
            return
        self._advance()
        task.cancelled = True
        self._active.remove(task)
        self._reschedule()

    def terminate(self) -> list[ComputeTask]:
        """Kill the machine (preemption): all in-flight tasks are lost.

        Returns the dropped tasks so the caller (client daemon) can report
        or simply let the scheduler's timeout machinery recover them.
        """
        self._advance()
        dropped = list(self._active)
        for task in dropped:
            task.cancelled = True
        self._active.clear()
        self.alive = False
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        return dropped

    @property
    def active_count(self) -> int:
        """Tasks currently sharing the machine."""
        return len(self._active)

    def utilization(self) -> float:
        """Fraction of elapsed sim time this resource had work (busy time)."""
        self._advance_busy_only()
        if self.sim.now == 0:
            return 0.0
        return self.busy_time / self.sim.now

    # -- internals ----------------------------------------------------------
    def _advance_busy_only(self) -> None:
        if self._active and self.sim.now > self._last_update:
            self.busy_time += self.sim.now - self._last_update

    def _advance(self) -> None:
        """Account for work done since the last state change."""
        elapsed = self.sim.now - self._last_update
        if elapsed > 0 and self._active:
            self.busy_time += elapsed
            rate = self.per_task_rate()
            decrement = rate * elapsed
            for task in self._active:
                task.work_remaining -= decrement
                # Clamp tiny float residue from event-time round-trips.
                if task.work_remaining < 1e-9:
                    task.work_remaining = 0.0
        self._last_update = self.sim.now

    def _reschedule(self) -> None:
        """Re-point the single completion event at the next finisher."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._active:
            return
        rate = self.per_task_rate()
        nxt = min(self._active, key=lambda t: (t.work_remaining, t._order))
        delay = nxt.work_remaining / rate
        self._completion_event = self.sim.schedule(
            delay, lambda: self._complete(nxt), label=f"{self.name}:complete"
        )

    def _complete(self, task: ComputeTask) -> None:
        self._completion_event = None
        self._advance()
        if task.cancelled:  # raced with termination/cancel
            self._reschedule()
            return
        task.done = True
        task.work_remaining = 0.0
        self._active.remove(task)
        self.completed_count += 1
        self._reschedule()
        task.on_complete()
