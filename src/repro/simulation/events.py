"""Event queue primitives for the discrete-event simulator.

A classic calendar queue on a binary heap: events are ordered by
``(time, sequence)`` so simultaneous events fire in scheduling order
(deterministic FIFO tie-break — essential for reproducibility).
Cancellation is lazy: a cancelled handle stays in the heap and is skipped
when popped, which keeps cancel O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError

__all__ = ["EventHandle", "EventQueue"]


class EventHandle:
    """Opaque handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(
        self, time: float, seq: int, callback: Callable[[], None], label: str
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True
        self.callback = _noop  # drop closure references promptly

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"EventHandle(t={self.time:.6g}, {self.label!r}{state})"


def _noop() -> None:
    return None


class EventQueue:
    """Min-heap of :class:`EventHandle` ordered by (time, sequence)."""

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        # Includes lazily-cancelled entries; use is_empty() for liveness.
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute ``time``; returns its handle."""
        if time != time:  # NaN guard
            raise SimulationError("cannot schedule an event at NaN time")
        handle = EventHandle(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, handle)
        return handle

    def pop(self) -> EventHandle:
        """Pop the earliest live event; raises if the queue is drained."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                return handle
        raise SimulationError("pop() from an empty event queue")

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if none remain."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def is_empty(self) -> bool:
        """True when no live (non-cancelled) events remain."""
        return self.peek_time() is None
