"""Event queue primitives for the discrete-event simulator.

A classic calendar queue on a binary heap: events are ordered by
``(time, sequence)`` so simultaneous events fire in scheduling order
(deterministic FIFO tie-break — essential for reproducibility).
Cancellation is lazy: a cancelled handle stays in the heap and is skipped
when popped, which keeps cancel O(1).  When more than half the heap is
cancelled entries the queue compacts (filter + re-heapify), so dead
events — e.g. the per-assignment timeout of every completed workunit in
a large fleet — cannot grow the heap, and thus the per-event ``log``
factor, without bound.  Compaction preserves ``(time, seq)`` order, so
replay determinism is unaffected.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError

__all__ = ["EventHandle", "EventQueue"]


class EventHandle:
    """Opaque handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled", "label", "_queue")

    def __init__(
        self, time: float, seq: int, callback: Callable[[], None], label: str
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label
        self._queue: "EventQueue | None" = None  # set by EventQueue.push

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        if not self.cancelled and self._queue is not None:
            self._queue._cancelled_count += 1
        self.cancelled = True
        self.callback = _noop  # drop closure references promptly

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"EventHandle(t={self.time:.6g}, {self.label!r}{state})"


def _noop() -> None:
    return None


class EventQueue:
    """Min-heap of :class:`EventHandle` ordered by (time, sequence)."""

    # Below this size compaction isn't worth the heapify; above it, a
    # majority-cancelled heap is rebuilt (amortized O(1) per cancel).
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._counter = itertools.count()
        self._cancelled_count = 0  # cancelled entries still in the heap

    def __len__(self) -> int:
        # Includes lazily-cancelled entries; use is_empty() for liveness.
        return len(self._heap)

    def _maybe_compact(self) -> None:
        if (
            len(self._heap) >= self._COMPACT_MIN
            and self._cancelled_count * 2 > len(self._heap)
        ):
            self._heap = [h for h in self._heap if not h.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_count = 0

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute ``time``; returns its handle."""
        if time != time:  # NaN guard
            raise SimulationError("cannot schedule an event at NaN time")
        self._maybe_compact()
        handle = EventHandle(time, next(self._counter), callback, label)
        handle._queue = self
        heapq.heappush(self._heap, handle)
        return handle

    def pop(self) -> EventHandle:
        """Pop the earliest live event; raises if the queue is drained."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                # Detach so a later cancel() of this (already fired)
                # handle doesn't count against a heap it has left.
                handle._queue = None
                return handle
            self._cancelled_count -= 1
        raise SimulationError("pop() from an empty event queue")

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if none remain."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_count -= 1
        return self._heap[0].time if self._heap else None

    def is_empty(self) -> bool:
        """True when no live (non-cancelled) events remain."""
        return self.peek_time() is None
