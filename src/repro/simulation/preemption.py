"""Preemptible-instance termination models (§III-E, §IV-E).

Two models, matching the two ways the paper reasons about interruption:

* :class:`ExponentialLifetime` — the *simulation* model.  AWS publishes a
  monthly "frequency of interruption" per instance pool; we convert an
  hourly interruption probability ``p`` into a memoryless lifetime with
  rate ``-ln(1 - p)`` per hour and schedule termination events on the
  simulator.  Terminations of different instances are independent, as the
  paper argues when instances come from distinct pools.

* :class:`BernoulliSubtaskModel` — the paper's *analytical* model:
  independent Bernoulli trials per subtask batch, expected extra training
  time ``n * p * t_o`` (§IV-E).  Implemented exactly so the benchmark can
  print the paper's 50 min / 200 min numbers and cross-check them against
  the event simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ExponentialLifetime",
    "BernoulliSubtaskModel",
    "interruption_rate_per_hour",
]


def interruption_rate_per_hour(hourly_probability: float) -> float:
    """Poisson rate λ such that P(preempted within 1 h) = ``hourly_probability``."""
    if not 0.0 <= hourly_probability < 1.0:
        raise ConfigurationError(
            f"hourly interruption probability must be in [0, 1), got {hourly_probability}"
        )
    return -math.log(1.0 - hourly_probability)


@dataclass(frozen=True)
class ExponentialLifetime:
    """Memoryless instance lifetime derived from an hourly interruption rate."""

    hourly_probability: float

    def __post_init__(self) -> None:
        interruption_rate_per_hour(self.hourly_probability)  # validates

    @property
    def rate_per_second(self) -> float:
        return interruption_rate_per_hour(self.hourly_probability) / 3600.0

    def sample_lifetime(self, rng: np.random.Generator) -> float:
        """Seconds until this instance is reclaimed (inf if p == 0)."""
        if self.hourly_probability == 0.0:
            return math.inf
        return float(rng.exponential(1.0 / self.rate_per_second))

    def survival_probability(self, seconds: float) -> float:
        """P(instance still running after ``seconds``)."""
        return math.exp(-self.rate_per_second * seconds)


@dataclass(frozen=True)
class BernoulliSubtaskModel:
    """The paper's §IV-E closed-form timeout model.

    Notation follows the paper: ``n_s`` total subtasks in the job,
    ``n_c`` client instances, ``n_tc`` simultaneous subtasks per client,
    ``t_e`` average subtask execution time, ``t_o`` the scheduler timeout.
    A *batch* of ``n_c * n_tc`` subtasks runs at a time, so
    ``n = n_s / (n_c * n_tc)`` batches can each independently lose an
    instance with probability ``p``.
    """

    n_s: int
    n_c: int
    n_tc: int
    t_e: float
    t_o: float

    def __post_init__(self) -> None:
        if min(self.n_s, self.n_c, self.n_tc) <= 0:
            raise ConfigurationError("n_s, n_c, n_tc must be positive")
        if self.t_e <= 0 or self.t_o <= 0:
            raise ConfigurationError("t_e and t_o must be positive")

    @property
    def n(self) -> float:
        """Number of sequential subtask waves (the paper's ``n``)."""
        return self.n_s / (self.n_c * self.n_tc)

    def expected_timeouts(self, p: float) -> float:
        """Expected number of waves that suffer a timeout: ``n * p``."""
        self._check_p(p)
        return self.n * p

    def expected_training_time(self, p: float) -> float:
        """``n·p·(t_e + t_o) + n·(1-p)·t_e  =  n·t_e + n·p·t_o`` (paper Eq.)."""
        self._check_p(p)
        return self.n * self.t_e + self.n * p * self.t_o

    def expected_delay(self, p: float) -> float:
        """The ``n·p·t_o`` term: expected *increase* in training time."""
        self._check_p(p)
        return self.n * p * self.t_o

    def baseline_time(self) -> float:
        """Training time with no preemptions: ``n · t_e``."""
        return self.n * self.t_e

    def sample_delay(self, p: float, rng: np.random.Generator) -> float:
        """Monte-Carlo draw of the total delay over all waves."""
        self._check_p(p)
        waves = int(round(self.n))
        timeouts = rng.binomial(1, p, size=waves).sum()
        return float(timeouts) * self.t_o

    @staticmethod
    def _check_p(p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"probability must be in [0, 1], got {p}")
