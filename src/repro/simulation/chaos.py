"""Layered chaos fault plan: declarative failure injection for every tier.

The paper's central robustness claim (§II-A, §III) is that VC-ASGD keeps
training on an *unreliable substrate*.  The seed reproduction only injected
faults at the client fleet (preemption, corruption, churn); this module
extends the fault model to the remaining layers, deterministically:

* **transfers** — per-transfer failure/stall probabilities, the faults
  BOINC answers with persistent transfers and exponential backoff
  (Anderson 2018, §"file transfers");
* **network partitions** — timed windows during which chosen clients (or
  the whole fleet) cannot reach the server at all;
* **parameter servers** — timed crash/restart schedules; surviving servers
  adopt the dead server's in-flight assimilation through the shared store,
  and a crashed *sole* server restarts from the latest epoch checkpoint;
* **KV store** — hard outage windows (operations block until the window
  lifts) and degraded-latency windows (every operation slowed by a factor).

A :class:`ChaosPlan` is pure data: the same plan plus the same seed must
reproduce a bit-identical run, so plans never hold RNGs — all stochastic
draws happen inside the simulation from named streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = [
    "TransferFaultPlan",
    "PartitionWindow",
    "PartitionSchedule",
    "StoreFaultWindow",
    "ServerCrash",
    "ChaosPlan",
]


@dataclass(frozen=True)
class TransferFaultPlan:
    """Per-transfer failure model for the web-server file channel.

    ``failure_p`` — probability a transfer aborts partway through (the
    client learns after a fraction of the nominal transfer time);
    ``stall_p`` — probability a transfer hangs: the client waits
    ``stall_timeout_s`` before detecting the stall and retrying.
    Both are evaluated per transfer from the client's network RNG stream,
    so runs stay deterministic for a fixed seed.
    """

    failure_p: float = 0.0
    stall_p: float = 0.0
    stall_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_p <= 1.0 or not 0.0 <= self.stall_p <= 1.0:
            raise ConfigurationError("transfer fault probabilities must be in [0, 1]")
        if self.failure_p + self.stall_p > 1.0:
            raise ConfigurationError("failure_p + stall_p cannot exceed 1")
        if self.stall_timeout_s <= 0:
            raise ConfigurationError("stall_timeout_s must be positive")

    @property
    def active(self) -> bool:
        return self.failure_p > 0.0 or self.stall_p > 0.0


@dataclass(frozen=True)
class PartitionWindow:
    """A timed network partition.

    During [start_s, start_s + duration_s) the listed clients (all clients
    when the tuple is empty) cannot reach the server: every transfer fails
    fast with a connection error.
    """

    start_s: float
    duration_s: float
    clients: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ConfigurationError("partition window needs start >= 0, duration > 0")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def blocks(self, client_id: str, now: float) -> bool:
        """Whether ``client_id`` is cut off from the server at ``now``."""
        if not self.start_s <= now < self.end_s:
            return False
        return not self.clients or client_id in self.clients


class PartitionSchedule:
    """Queryable view over a set of partition windows."""

    def __init__(self, windows: tuple[PartitionWindow, ...] = ()) -> None:
        self.windows = tuple(windows)

    def blocking(self, client_id: str, now: float) -> PartitionWindow | None:
        """The window currently cutting ``client_id`` off, or None."""
        for window in self.windows:
            if window.blocks(client_id, now):
                return window
        return None

    def __bool__(self) -> bool:
        return bool(self.windows)


@dataclass(frozen=True)
class StoreFaultWindow:
    """A KV-store outage or degraded-latency window.

    ``latency_factor`` None means a hard outage: operations issued inside
    the window complete only after it lifts (plus their normal latency).
    A finite factor > 1 multiplies every operation's latency instead.
    """

    start_s: float
    duration_s: float
    latency_factor: float | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ConfigurationError("store fault window needs start >= 0, duration > 0")
        if self.latency_factor is not None and self.latency_factor < 1.0:
            raise ConfigurationError("latency_factor must be >= 1 (or None for outage)")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def covers(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class ServerCrash:
    """One scheduled parameter-server crash.

    ``restart_delay_s`` None means the worker never comes back (permanent
    capacity loss); otherwise a replacement starts after the delay.
    """

    at_s: float
    restart_delay_s: float | None = 120.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigurationError("crash time must be non-negative")
        if self.restart_delay_s is not None and self.restart_delay_s <= 0:
            raise ConfigurationError("restart_delay_s must be positive or None")


@dataclass(frozen=True)
class ChaosPlan:
    """The full layered fault plan for one run.

    ``restore_from_checkpoint`` controls sole-server recovery: when the
    last live parameter server crashes and later restarts, the runner
    restores the server parameter copy from its latest epoch checkpoint
    (modeling a server whose durable state is the checkpoint database).
    """

    transfer: TransferFaultPlan = field(default_factory=TransferFaultPlan)
    partitions: tuple[PartitionWindow, ...] = ()
    ps_crashes: tuple[ServerCrash, ...] = ()
    kv_windows: tuple[StoreFaultWindow, ...] = ()
    restore_from_checkpoint: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.transfer, TransferFaultPlan):
            raise ConfigurationError("ChaosPlan.transfer must be a TransferFaultPlan")
        for window in self.partitions:
            if not isinstance(window, PartitionWindow):
                raise ConfigurationError("ChaosPlan.partitions must hold PartitionWindows")
        for crash in self.ps_crashes:
            if not isinstance(crash, ServerCrash):
                raise ConfigurationError("ChaosPlan.ps_crashes must hold ServerCrashes")
        for window in self.kv_windows:
            if not isinstance(window, StoreFaultWindow):
                raise ConfigurationError("ChaosPlan.kv_windows must hold StoreFaultWindows")

    @property
    def active(self) -> bool:
        """Whether the plan injects any fault at all."""
        return bool(
            self.transfer.active
            or self.partitions
            or self.ps_crashes
            or self.kv_windows
        )
