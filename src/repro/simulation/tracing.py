"""Structured event tracing for experiment analysis.

Components emit typed records into a shared :class:`Trace`; the analysis
layer and the benchmark harness read them back as filtered sequences or
NumPy time series.  This replaces ad-hoc printf instrumentation and gives
tests a stable surface to assert scheduling behaviour against.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped event: a kind tag plus free-form fields."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field value with a default, like ``dict.get``."""
        return self.fields.get(key, default)


class Trace:
    """Append-only event log with query helpers.

    Observers attached via :meth:`attach` see every record (and counter
    bump) as it happens — the hook behind ``repro.obs``'s metrics
    collector and invariant auditor.  The hot path stays allocation-free
    when nobody is listening: a single truthiness check on an empty list.
    Observers must be pure readers; mutating simulation state or drawing
    randomness from inside one would break bit-exact reproducibility.

    ``max_records`` bounds the in-memory record list: once full, each new
    record evicts the oldest (ring/drop policy) and bumps the
    ``trace.dropped`` counter.  Counters and observers still see every
    event, so metrics/audit stay exact; only the replayable record window
    shrinks.  The default (None) keeps the historical unbounded behaviour.
    """

    def __init__(self, max_records: int | None = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive (or None for unbounded)")
        self.max_records = max_records
        self._records: deque[TraceRecord] = deque(maxlen=max_records)
        self.counters: Counter[str] = Counter()
        self._observers: list[Any] = []

    def attach(self, observer: Any) -> None:
        """Subscribe ``observer`` (``on_record(rec)`` / ``on_counter(kind, n)``)."""
        if observer not in self._observers:
            self._observers.append(observer)

    def detach(self, observer: Any) -> None:
        """Unsubscribe a previously attached observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event at simulated ``time``."""
        record = TraceRecord(time, kind, fields)
        if self.max_records is not None and len(self._records) == self.max_records:
            # deque(maxlen=...) silently evicts; account for it explicitly
            # so bounded runs can report how much history they lost.
            self.counters["trace.dropped"] += 1
        self._records.append(record)
        self.counters[kind] += 1
        if self._observers:
            for observer in self._observers:
                observer.on_record(record)

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump a counter without storing a record (cheap hot-path stats)."""
        self.counters[counter] += amount
        if self._observers:
            for observer in self._observers:
                observer.on_counter(counter, amount)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records with the given kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events (or counter bumps) of ``kind``."""
        return self.counters.get(kind, 0)

    def series(self, kind: str, field_name: str) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, values) arrays for one field of one record kind."""
        recs = self.of_kind(kind)
        times = np.asarray([r.time for r in recs])
        values = np.asarray([r[field_name] for r in recs])
        return times, values

    def last(self, kind: str) -> TraceRecord | None:
        """Most recent record of ``kind`` or None."""
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def summary(
        self, prefix: str | tuple[str, ...] | None = None
    ) -> dict[str, int]:
        """Counter snapshot (kind -> count), sorted by kind.

        ``prefix`` restricts the snapshot to one subsystem's kinds, e.g.
        ``summary("ps.")`` or ``summary("net.")`` for the chaos layers; a
        tuple selects several subsystems at once.  The filter covers
        *every* counter — records emitted via :meth:`emit` and bare
        :meth:`incr` bumps alike (the chaos layers lean on the latter),
        since both live in the same ``counters`` table.
        """
        items = sorted(self.counters.items())
        if prefix is not None:
            items = [(k, v) for k, v in items if k.startswith(prefix)]
        return dict(items)
