"""Structured event tracing for experiment analysis.

Components emit typed records into a shared :class:`Trace`; the analysis
layer and the benchmark harness read them back as filtered sequences or
NumPy time series.  This replaces ad-hoc printf instrumentation and gives
tests a stable surface to assert scheduling behaviour against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped event: a kind tag plus free-form fields."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field value with a default, like ``dict.get``."""
        return self.fields.get(key, default)


class Trace:
    """Append-only event log with query helpers."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self.counters: Counter[str] = Counter()

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event at simulated ``time``."""
        self._records.append(TraceRecord(time, kind, fields))
        self.counters[kind] += 1

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump a counter without storing a record (cheap hot-path stats)."""
        self.counters[counter] += amount

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records with the given kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events (or counter bumps) of ``kind``."""
        return self.counters.get(kind, 0)

    def series(self, kind: str, field_name: str) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, values) arrays for one field of one record kind."""
        recs = self.of_kind(kind)
        times = np.asarray([r.time for r in recs])
        values = np.asarray([r[field_name] for r in recs])
        return times, values

    def last(self, kind: str) -> TraceRecord | None:
        """Most recent record of ``kind`` or None."""
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def summary(self, prefix: str | None = None) -> dict[str, int]:
        """Counter snapshot (kind -> count), sorted by kind.

        ``prefix`` restricts the snapshot to one subsystem's kinds, e.g.
        ``summary("ps.")`` or ``summary("net.")`` for the chaos layers.
        """
        items = sorted(self.counters.items())
        if prefix is not None:
            items = [(k, v) for k, v in items if k.startswith(prefix)]
        return dict(items)
