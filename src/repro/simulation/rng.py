"""Deterministic named random streams.

All stochastic behaviour in the system (weight init, data generation,
shard shuffles, network jitter, preemption draws, client speed variation)
draws from a stream obtained by name from one :class:`RngRegistry`.  Streams
are independent (derived via ``SeedSequence`` with a stable hash of the
name), so adding a new consumer never perturbs existing ones — runs stay
reproducible as the system grows.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "stable_name_hash"]


def stable_name_hash(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (process-independent).

    Python's builtin ``hash`` is salted per process; we need cross-run
    stability, hence BLAKE2.
    """
    digest = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Factory of independent, deterministic ``numpy.random.Generator``s."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls return the *same* generator object, so consumers
        share stream state by name.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=(self.seed, stable_name_hash(name)))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` with its initial state.

        Useful when a component needs to replay the same draws (e.g. a
        reissued workunit re-deriving its shard shuffle).
        """
        seq = np.random.SeedSequence(entropy=(self.seed, stable_name_hash(name)))
        return np.random.default_rng(seq)

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (namespacing, e.g. one per experiment)."""
        return RngRegistry(seed=(self.seed * 0x9E3779B1 + stable_name_hash(name)) % 2**63)

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
