"""Time-varying network conditions (§II-A: "variable network latency").

Volunteer WAN paths are not stationary: residential links congest in the
evening, institutional ones during work hours.  A
:class:`CongestionSchedule` maps simulated time to a bandwidth factor
(cyclic, piecewise constant), and :class:`CongestedLink` applies it on top
of a base :class:`~repro.simulation.network.NetworkLink`.

The transfer-time API is shared with the plain link (duck-typed
``transfer_time(nbytes, rng, now)``); the web server passes the simulation
clock so the congestion phase is consistent across the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .network import NetworkLink

__all__ = ["CongestionSchedule", "diurnal_schedule", "CongestedLink"]


@dataclass(frozen=True)
class CongestionSchedule:
    """Cyclic piecewise-constant bandwidth factors.

    ``steps`` is a sorted tuple of (start_seconds, factor) pairs; the first
    entry must start at 0.  The schedule repeats with ``period_s``.
    A factor of 1.0 is uncongested; 0.25 means a quarter of nominal
    bandwidth.
    """

    steps: tuple[tuple[float, float], ...]
    period_s: float = 24 * 3600.0

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("schedule needs at least one step")
        if self.steps[0][0] != 0.0:
            raise ConfigurationError("first step must start at t=0")
        if self.period_s <= 0:
            raise ConfigurationError("period must be positive")
        last = -1.0
        for start, factor in self.steps:
            if start <= last and start != 0.0:
                raise ConfigurationError("step starts must be increasing")
            if not 0.0 < factor:
                raise ConfigurationError(f"factor must be positive, got {factor}")
            if start >= self.period_s:
                raise ConfigurationError("step start beyond the period")
            last = start

    def factor_at(self, now: float) -> float:
        """Bandwidth factor in effect at simulated time ``now``."""
        phase = now % self.period_s
        current = self.steps[0][1]
        for start, factor in self.steps:
            if phase >= start:
                current = factor
            else:
                break
        return current


def diurnal_schedule(
    off_peak_factor: float = 1.0,
    peak_factor: float = 0.35,
    peak_start_h: float = 18.0,
    peak_end_h: float = 23.0,
) -> CongestionSchedule:
    """Residential evening-congestion pattern: full speed except during the
    evening peak window, when bandwidth drops to ``peak_factor``."""
    if not 0.0 <= peak_start_h < peak_end_h <= 24.0:
        raise ConfigurationError("need 0 <= peak_start < peak_end <= 24")
    steps: list[tuple[float, float]] = [(0.0, off_peak_factor)]
    if peak_start_h > 0:
        steps.append((peak_start_h * 3600.0, peak_factor))
    else:
        steps[0] = (0.0, peak_factor)
    if peak_end_h < 24.0:
        steps.append((peak_end_h * 3600.0, off_peak_factor))
    return CongestionSchedule(steps=tuple(steps))


class CongestedLink:
    """A network link whose bandwidth follows a congestion schedule."""

    def __init__(self, base: NetworkLink, schedule: CongestionSchedule) -> None:
        self.base = base
        self.schedule = schedule

    @property
    def latency_s(self) -> float:
        """Base one-way latency (congestion affects bandwidth only)."""
        return self.base.latency_s

    @property
    def bandwidth_bps(self) -> float:
        """Nominal (uncongested) bandwidth."""
        return self.base.bandwidth_bps

    def transfer_time(
        self,
        nbytes: int,
        rng: np.random.Generator | None = None,
        now: float = 0.0,
    ) -> float:
        """Transfer seconds at the bandwidth in effect at time ``now``."""
        factor = self.schedule.factor_at(now)
        return self.base.scaled(factor).transfer_time(nbytes, rng)

    def handshake_time(self) -> float:
        """Connection-failure detection time (congestion leaves RTT alone)."""
        return self.base.handshake_time()
