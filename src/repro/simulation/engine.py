"""Discrete-event simulation engine.

The engine advances a virtual clock from event to event; all components of
the volunteer-computing system (clients, scheduler, parameter servers,
network transfers, preemptions, timeouts) are callbacks scheduled on one
shared :class:`Simulator`.

Real computation (NumPy training steps) happens *inside* callbacks; only
the passage of time is virtual.  This is the "real learning, simulated
time" architecture from DESIGN.md §5.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from .events import EventHandle, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Single-threaded discrete-event simulator with a float seconds clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0
        self._running = False
        # Optional observability hook (see ``repro.obs.profiler``): when
        # set, every event dispatch is routed through it so wall-clock can
        # be attributed to event labels.  ``None`` keeps the dispatch path
        # identical to the un-instrumented engine.
        self.profiler = None

    # -- scheduling -----------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds (>= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        return self._queue.push(time, callback, label)

    # -- execution ------------------------------------------------------
    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Process events in time order.

        Stops when the queue drains, when the next event lies beyond
        ``until`` (clock is then advanced exactly to ``until``), or after
        ``max_events`` (guarding against runaway self-rescheduling loops).
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event callback")
        self._running = True
        try:
            processed = 0
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    return
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a self-rescheduling loop"
                    )
                handle = self._queue.pop()
                self.now = handle.time
                if self.profiler is None:
                    handle.callback()
                else:
                    self.profiler.run_event(handle.label, handle.callback)
                processed += 1
                self.events_processed += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one event; returns False if none remained."""
        if self._queue.is_empty():
            return False
        handle = self._queue.pop()
        self.now = handle.time
        if self.profiler is None:
            handle.callback()
        else:
            self.profiler.run_event(handle.label, handle.callback)
        self.events_processed += 1
        return True

    def pending(self) -> int:
        """Number of live events still queued."""
        # Count live entries only (len() over the heap includes cancelled).
        return sum(1 for h in self._queue._heap if not h.cancelled)
