"""Byzantine adversary fabric: declarative malicious-client behaviour.

The chaos plan (:mod:`repro.simulation.chaos`) injects *faults* — crashes,
stalls, partitions — but every client stays honest.  Open volunteer
enrollment (Anderson 2018) guarantees some hosts return wrong or malicious
results, so this module adds the missing threat model as a peer layer:

* **result falsification** — uploaded parameters replaced with random
  noise, scaled copies, or sign-flipped deltas;
* **gradient poisoning** — updates drift toward a fixed wrong optimum,
  steering the global model instead of merely corrupting it;
* **claim inflation** — honest compute, dishonest credit claims
  (defeated by median-of-claims granting in the credit ledger);
* **sybil fleets** — many logical clients behind one adversary identity,
  multiplying any of the above behaviours;
* **collusion** — replicas of the same logical unit submit *bit-identical*
  wrong answers, defeating a naive fuzzy-agreement quorum (answered by
  reliability-weighted canonical selection in the quorum assimilator).

An :class:`AdversaryPlan` is pure data, exactly like :class:`ChaosPlan`:
the same plan plus the same seed must reproduce a bit-identical run, so
plans never hold RNGs — the runtime :class:`AdversaryFabric` draws from
named streams of the run's :class:`RngRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from .rng import stable_name_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rng import RngRegistry
    from .tracing import Trace

__all__ = [
    "ATTACK_KINDS",
    "AdversaryBehavior",
    "SybilFleet",
    "AdversaryPlan",
    "AdversaryFabric",
    "TamperedUpdate",
]

ATTACK_KINDS = (
    "falsify_random",
    "falsify_scale",
    "falsify_signflip",
    "poison_drift",
    "claim_inflate",
    "collude",
)


@dataclass(frozen=True)
class AdversaryBehavior:
    """One malicious behaviour assigned to a set of clients.

    ``attack`` names the tampering applied to every upload of the listed
    clients; ``magnitude`` scales its strength (noise scale, parameter
    scale factor, flip gain, or drift step depending on the attack);
    ``claim_factor`` multiplies the credit claim (only meaningful for
    ``claim_inflate``, where the computation itself stays honest);
    ``collusion_group`` names the cartel for ``collude`` — members of the
    same group submit bit-identical wrong answers for the same logical
    unit, so a fuzzy-agreement quorum sees a perfectly agreeing clique.
    """

    clients: tuple[str, ...]
    attack: str = "falsify_random"
    magnitude: float = 1.0
    claim_factor: float = 1.0
    collusion_group: str = "cartel-0"

    def __post_init__(self) -> None:
        if not self.clients:
            raise ConfigurationError("AdversaryBehavior needs at least one client")
        if self.attack not in ATTACK_KINDS:
            raise ConfigurationError(
                f"unknown attack {self.attack!r}; expected one of {ATTACK_KINDS}"
            )
        if self.magnitude <= 0:
            raise ConfigurationError("attack magnitude must be positive")
        if self.claim_factor < 1.0:
            raise ConfigurationError("claim_factor must be >= 1 (1 = honest claim)")


@dataclass(frozen=True)
class SybilFleet:
    """Extra logical clients operated by a single adversary identity.

    ``count`` sybil clients join the fleet at runtime (named
    ``sybil-<identity>-NNN``), all applying ``attack`` with ``magnitude``.
    They share one *identity*, which matters for the reliability/quarantine
    loop: all their invalidated results accrue to separate host records
    (BOINC cannot see through a sybil), which is exactly why quarantine
    alone cannot stop a sybil fleet and robust aggregation must back it up.
    """

    identity: str
    count: int
    attack: str = "falsify_random"
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if not self.identity:
            raise ConfigurationError("SybilFleet needs a non-empty identity")
        if self.count < 1:
            raise ConfigurationError("SybilFleet.count must be >= 1")
        if self.attack not in ATTACK_KINDS:
            raise ConfigurationError(
                f"unknown attack {self.attack!r}; expected one of {ATTACK_KINDS}"
            )
        if self.magnitude <= 0:
            raise ConfigurationError("attack magnitude must be positive")


@dataclass(frozen=True)
class AdversaryPlan:
    """The full Byzantine threat plan for one run — pure data, no RNGs."""

    behaviors: tuple[AdversaryBehavior, ...] = ()
    sybils: tuple[SybilFleet, ...] = ()

    def __post_init__(self) -> None:
        for behavior in self.behaviors:
            if not isinstance(behavior, AdversaryBehavior):
                raise ConfigurationError(
                    "AdversaryPlan.behaviors must hold AdversaryBehaviors"
                )
        for fleet in self.sybils:
            if not isinstance(fleet, SybilFleet):
                raise ConfigurationError("AdversaryPlan.sybils must hold SybilFleets")
        seen: set[str] = set()
        for behavior in self.behaviors:
            for client in behavior.clients:
                if client in seen:
                    raise ConfigurationError(
                        f"client {client!r} assigned to more than one behavior"
                    )
                seen.add(client)

    @property
    def active(self) -> bool:
        """Whether the plan compromises any client at all."""
        return bool(self.behaviors or self.sybils)


@dataclass(frozen=True)
class TamperedUpdate:
    """Outcome of one tampering decision for an upload."""

    params: np.ndarray
    gradient: np.ndarray | None
    claimed_credit: float | None
    attack: str | None

    @property
    def tampered(self) -> bool:
        return self.attack is not None and self.attack != "claim_inflate"


class _Assignment:
    """Resolved behaviour for one client id."""

    __slots__ = ("attack", "magnitude", "claim_factor", "collusion_group", "identity")

    def __init__(
        self,
        attack: str,
        magnitude: float,
        claim_factor: float,
        collusion_group: str,
        identity: str,
    ) -> None:
        self.attack = attack
        self.magnitude = magnitude
        self.claim_factor = claim_factor
        self.collusion_group = collusion_group
        self.identity = identity


class AdversaryFabric:
    """Runtime tampering engine for an :class:`AdversaryPlan`.

    Sits between local training and the upload in the runner: the client
    computes an honest update, then :meth:`tamper` decides — from the
    per-client assignment and deterministic named RNG streams — what
    actually goes over the wire.  Honest clients never reach this object,
    so a run with no plan is bit-identical to a run predating the fabric.
    """

    def __init__(self, plan: AdversaryPlan, rngs: "RngRegistry", trace: "Trace") -> None:
        self.plan = plan
        self.rngs = rngs
        self.trace = trace
        self._assignments: dict[str, _Assignment] = {}
        self._drift_targets: dict[str, np.ndarray] = {}
        self.tampered_uploads = 0
        self.inflated_claims = 0
        for behavior in plan.behaviors:
            for client in behavior.clients:
                self._assignments[client] = _Assignment(
                    attack=behavior.attack,
                    magnitude=behavior.magnitude,
                    claim_factor=behavior.claim_factor,
                    collusion_group=behavior.collusion_group,
                    identity=client,
                )

    def register_sybil(self, fleet: SybilFleet, client_id: str) -> None:
        """Bind a runtime sybil client id to its fleet's behaviour."""
        self._assignments[client_id] = _Assignment(
            attack=fleet.attack,
            magnitude=fleet.magnitude,
            claim_factor=1.0,
            collusion_group=f"sybil-{fleet.identity}",
            identity=fleet.identity,
        )

    def compromised(self, client_id: str) -> bool:
        return client_id in self._assignments

    def attack_for(self, client_id: str) -> str | None:
        assignment = self._assignments.get(client_id)
        return assignment.attack if assignment is not None else None

    def tamper(
        self,
        client_id: str,
        wu_id: str,
        logical_id: str,
        base_params: np.ndarray,
        honest_params: np.ndarray,
        honest_gradient: np.ndarray | None,
        honest_credit: float,
        now: float,
    ) -> TamperedUpdate:
        """Apply the client's assigned attack to an honest update.

        ``base_params`` is the published vector the client trained from,
        ``honest_params`` / ``honest_gradient`` the true training result.
        Every stochastic draw comes from a stream named after the client
        (or, for collusion, a stream keyed by cartel + logical unit, so
        all cartel members produce the same bytes for the same unit).
        """
        assignment = self._assignments.get(client_id)
        if assignment is None:
            return TamperedUpdate(honest_params, honest_gradient, None, None)
        attack = assignment.attack
        magnitude = assignment.magnitude
        params = honest_params
        gradient = honest_gradient
        claimed: float | None = None
        if attack == "falsify_random":
            rng = self.rngs.stream(f"adv:{client_id}")
            scale = magnitude * (float(np.mean(np.abs(base_params))) + 1e-3)
            params = rng.standard_normal(honest_params.shape).astype(
                honest_params.dtype
            )
            params *= scale
            gradient = self._noise_like(rng, gradient, scale)
        elif attack == "falsify_scale":
            params = honest_params * magnitude
            if gradient is not None:
                gradient = gradient * magnitude
        elif attack == "falsify_signflip":
            params = base_params - magnitude * (honest_params - base_params)
            if gradient is not None:
                gradient = -magnitude * gradient
        elif attack == "poison_drift":
            target = self._drift_target(assignment.identity, base_params)
            step = min(1.0, 0.25 * magnitude)
            params = honest_params + step * (target - honest_params)
            if gradient is not None:
                gradient = magnitude * (base_params - target)
        elif attack == "claim_inflate":
            claimed = honest_credit * assignment.claim_factor
            self.inflated_claims += 1
            self.trace.emit(
                now,
                "adv.claim_inflate",
                client=client_id,
                wu=wu_id,
                claimed=claimed,
                honest=honest_credit,
            )
            return TamperedUpdate(honest_params, honest_gradient, claimed, attack)
        elif attack == "collude":
            # Cartel members derive the wrong answer from (group, logical
            # unit) alone, so replicas of one unit are bit-identical — a
            # perfectly agreeing clique of wrong results.
            seed_name = f"adv-collude:{assignment.collusion_group}:{logical_id}"
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=(self.rngs.seed, stable_name_hash(seed_name))
                )
            )
            scale = magnitude * (float(np.mean(np.abs(base_params))) + 1e-3)
            params = rng.standard_normal(honest_params.shape).astype(
                honest_params.dtype
            )
            params *= scale
            gradient = self._noise_like(rng, gradient, scale)
        self.tampered_uploads += 1
        self.trace.emit(
            now, "adv.tamper", client=client_id, wu=wu_id, attack=attack
        )
        return TamperedUpdate(params, gradient, claimed, attack)

    @staticmethod
    def _noise_like(
        rng: np.random.Generator, gradient: np.ndarray | None, scale: float
    ) -> np.ndarray | None:
        """Replacement noise gradient for falsified uploads.

        Gradient-consuming rules (:meth:`UpdateRule.uses_gradient`) require
        every update to carry one, so a falsifier must forge it too — drawn
        *after* the parameter noise from the same stream so cartel members
        stay bit-identical.
        """
        if gradient is None:
            return None
        forged = rng.standard_normal(gradient.shape).astype(gradient.dtype)
        forged *= scale
        return forged

    def _drift_target(self, identity: str, base_params: np.ndarray) -> np.ndarray:
        """The fixed wrong optimum an identity steers toward (lazy, cached)."""
        target = self._drift_targets.get(identity)
        if target is None:
            rng = self.rngs.fresh(f"adv-target:{identity}")
            scale = 4.0 * (float(np.std(base_params)) + 1e-3)
            target = rng.standard_normal(base_params.shape).astype(base_params.dtype)
            target *= scale
            self._drift_targets[identity] = target
        return target
