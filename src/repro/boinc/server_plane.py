"""Sharded server planes: N work-generator/validator shards (§III-B scale-out).

The paper's scalability discussion (and BOINC's real deployments) run
several scheduler/validator instances behind one shared database.  Here
the "database" is the existing eventual-consistency KV store: N *planes*
partition logical workunits by hash, each plane mints its slice of an
epoch with its own RNG stream, and epoch cut-over is coordinated through
the store — every plane writes an epoch marker, and the combined workunit
batch is published only once all markers have committed (so a plane
behind a KV outage window delays the cut-over instead of splitting it).
Validation is routed by the same hash, so the accept/reject books of each
plane are disjoint; assimilation stays the single exactly-once pipeline.

With ``planes == 1`` the runner keeps the plain :class:`WorkGenerator` /
:class:`ParameterValidator` path, so legacy configs are untouched.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..errors import ConfigurationError
from ..simulation.engine import Simulator
from ..simulation.tracing import Trace
from .replication import logical_id
from .validator import ParameterValidator, ValidationResult
from .work_generator import WorkGenerator
from .workunit import Workunit

__all__ = [
    "PLANE_EPOCH_KEY",
    "plane_of",
    "ShardedWorkGenerator",
    "ShardedValidatorPool",
]

# KV key prefix for per-plane epoch cut-over markers.
PLANE_EPOCH_KEY = "wg.plane-epoch"


def plane_of(name: str, planes: int) -> int:
    """Stable hash partition of a logical-workunit id across planes."""
    if planes <= 1:
        return 0
    digest = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % planes


class ShardedWorkGenerator:
    """N work-generation planes over one shared :class:`WorkGenerator`.

    The inner generator owns the dataset sharding and the static file
    catalogue (published once); the planes partition *minting* by the
    logical base id's hash and coordinate epoch cut-over through the KV
    store.  Exposes the same surface the runner uses (``make_epoch`` /
    ``make_retries`` / ``shard_file_name``) plus :meth:`generate_epoch`,
    the barrier-publishing variant.
    """

    def __init__(
        self,
        inner: WorkGenerator,
        planes: int,
        store,
        sim: Simulator,
        trace: Trace | None = None,
        plane_rngs: list[np.random.Generator] | None = None,
    ) -> None:
        if planes < 1:
            raise ConfigurationError(f"planes must be >= 1, got {planes}")
        if plane_rngs is not None and len(plane_rngs) != planes:
            raise ConfigurationError("need exactly one RNG stream per plane")
        self.inner = inner
        self.planes = planes
        self.store = store
        self.sim = sim
        self.trace = trace
        self._plane_rngs = (
            plane_rngs
            if plane_rngs is not None
            else [np.random.default_rng(1_000 + p) for p in range(planes)]
        )
        self.cutovers = 0

    # -- passthroughs the runner relies on --------------------------------
    @property
    def num_shards(self) -> int:
        return self.inner.num_shards

    @property
    def model_file_name(self) -> str:
        return self.inner.model_file_name

    def shard_file_name(self, shard_index: int) -> str:
        return self.inner.shard_file_name(shard_index)

    # -- minting ----------------------------------------------------------
    def plane_for(self, base_id: str) -> int:
        return plane_of(base_id, self.planes)

    def _mint(
        self,
        epoch: int,
        param_file_name: str,
        replicas: int,
        shard_indices,
        suffix: str = "",
    ) -> list[list[Workunit]]:
        per_plane: list[list[Workunit]] = [[] for _ in range(self.planes)]
        for shard_index in shard_indices:
            base_id = f"{self.inner.job_id}:e{epoch:03d}:s{shard_index:03d}{suffix}"
            plane = self.plane_for(base_id)
            per_plane[plane].extend(
                self.inner._mint_subtask(
                    base_id,
                    epoch,
                    shard_index,
                    param_file_name,
                    replicas,
                    rng=self._plane_rngs[plane],
                )
            )
        return per_plane

    def make_epoch(
        self, epoch: int, param_file_name: str, replicas: int = 1
    ) -> list[Workunit]:
        """Mint one epoch across all planes (no cut-over barrier)."""
        per_plane = self._mint(
            epoch, param_file_name, replicas, range(self.inner.num_shards)
        )
        return [wu for plane in per_plane for wu in plane]

    def generate_epoch(
        self, epoch: int, param_file_name: str, replicas: int, publish
    ) -> list[Workunit]:
        """Mint an epoch and publish it once every plane's cut-over marker
        has committed to the KV store.

        Returns the full workunit list immediately (the runner tracks
        epoch completion off it); ``publish`` fires asynchronously after
        the slowest plane's marker write — including any chaos-fabric
        outage/degradation windows on the store.
        """
        per_plane = self._mint(
            epoch, param_file_name, replicas, range(self.inner.num_shards)
        )
        flat = [wu for plane in per_plane for wu in plane]
        pending = set(range(self.planes))
        started = self.sim.now

        def plane_committed(plane: int) -> None:
            pending.discard(plane)
            if pending:
                return
            self.cutovers += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "plane.cutover",
                    epoch=epoch,
                    planes=self.planes,
                    waited_s=self.sim.now - started,
                )
            publish(flat)

        for plane in range(self.planes):
            self.store.write(
                f"{PLANE_EPOCH_KEY}:{plane}",
                epoch,
                on_done=lambda p=plane: plane_committed(p),
                nbytes=64,
            )
        return flat

    def make_retries(
        self,
        epoch: int,
        param_file_name: str,
        shard_indices: list[int],
        round_index: int,
        replicas: int = 1,
    ) -> list[Workunit]:
        """Replacement workunits for permanently failed shards.

        Barrier retries are replacements inside an already-open epoch, so
        they publish directly — only the epoch cut-over itself is
        coordinated through the store.
        """
        if round_index < 1:
            raise ConfigurationError("round_index must be >= 1")
        per_plane = self._mint(
            epoch, param_file_name, replicas, shard_indices, suffix=f":b{round_index}"
        )
        return [wu for plane in per_plane for wu in plane]


class ShardedValidatorPool:
    """Routes validation across N validator shards by logical-id hash.

    Each shard keeps its own accept/reject books; the pool aggregates
    them so existing consumers (``server.validator.rejected``) see fleet
    totals.  Routing by *logical* id keeps all replicas of one subtask on
    the same plane, matching the work-generation partition.
    """

    def __init__(self, shards: list[ParameterValidator]) -> None:
        if not shards:
            raise ConfigurationError("need at least one validator shard")
        self.shards = shards

    @property
    def planes(self) -> int:
        return len(self.shards)

    @property
    def expected_size(self) -> int:
        return self.shards[0].expected_size

    @property
    def accepted(self) -> int:
        return sum(shard.accepted for shard in self.shards)

    @property
    def rejected(self) -> int:
        return sum(shard.rejected for shard in self.shards)

    def shard_for(self, wu_id: str) -> ParameterValidator:
        return self.shards[plane_of(logical_id(wu_id), self.planes)]

    def validate(
        self, payload: object, now: float = 0.0, wu_id: str = ""
    ) -> ValidationResult:
        return self.shard_for(wu_id).validate(payload, now=now, wu_id=wu_id)
