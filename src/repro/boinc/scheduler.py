"""BOINC-like scheduler: workunit assignment, timeouts, reliability (§III-B).

The scheduler is pull-based: clients request work when they have free
execution slots.  Three policies from the paper are implemented:

* **timeout + reissue** — every issued workunit carries a deadline; when
  the deadline passes without a result the workunit returns to the unsent
  queue (fault tolerance against preempted/dead clients);
* **sticky-file affinity** — among unsent workunits, prefer ones whose
  data shard the requesting client already caches (avoids re-downloads);
* **reliability tracking** — per-client EWMA of attempt outcomes; clients
  below a reliability floor are put on probation (one workunit at a time)
  so chronically flaky nodes can't hoard work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulerError
from ..simulation.engine import Simulator
from ..simulation.events import EventHandle
from ..simulation.tracing import Trace
from .replication import logical_id
from .workunit import Workunit, WorkunitState

__all__ = ["SchedulerConfig", "ClientRecord", "Scheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler policy knobs (paper defaults: t_o = 5 min, 5 attempts)."""

    timeout_s: float = 300.0
    max_attempts: int = 5
    affinity_enabled: bool = True
    reliability_enabled: bool = True
    reliability_decay: float = 0.8  # EWMA weight on history
    probation_threshold: float = 0.3
    # Work-fetch backoff after a failure (BOINC clients back off after
    # errors); doubles per consecutive failure up to the cap.
    backoff_base_s: float = 60.0
    backoff_max_s: float = 3600.0
    # BOINC's replication rule: a host may compute at most one replica of
    # any logical workunit (redundant results must come from distinct
    # hosts to be meaningful for verification).
    one_result_per_host: bool = True
    # Trickle-style progress heartbeats: a client computing a long subtask
    # periodically reports progress, and each report slides the deadline
    # forward (dead clients stop reporting and still time out).  Guards
    # slow-but-alive heterogeneous nodes against spurious reissues.
    heartbeats_enabled: bool = False
    heartbeat_interval_s: float = 60.0


@dataclass
class ClientRecord:
    """Scheduler-side view of one client."""

    client_id: str
    reliability: float = 1.0  # optimistic prior, decays on failures
    assigned: set[str] = field(default_factory=set)  # wu_ids in flight
    completed: int = 0
    failed: int = 0
    consecutive_failures: int = 0
    backoff_until: float = 0.0  # no work granted before this sim time
    # Logical workunit ids this host has ever been sent a replica of.
    seen_logical: set[str] = field(default_factory=set)


class Scheduler:
    """Assigns workunits to clients and polices deadlines."""

    def __init__(
        self,
        sim: Simulator,
        config: SchedulerConfig | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.sim = sim
        self.config = config or SchedulerConfig()
        self.trace = trace
        self._workunits: dict[str, Workunit] = {}
        self._unsent: list[str] = []  # FIFO of wu_ids ready for assignment
        self._clients: dict[str, ClientRecord] = {}
        self._timeout_handles: dict[tuple[str, int], EventHandle] = {}
        # Hook the server/client layer sets to learn about timeouts so the
        # executing client can abort the stale task.
        self.on_timeout = None  # Callable[[str wu_id, str client_id], None]
        self.timeouts = 0
        self.reissues = 0
        self.heartbeats = 0
        self.cancellations = 0

    # -- registration -----------------------------------------------------
    def register_client(self, client_id: str) -> ClientRecord:
        """Fetch-or-create the scheduler-side record for a client."""
        record = self._clients.get(client_id)
        if record is None:
            record = ClientRecord(client_id=client_id)
            self._clients[client_id] = record
        return record

    def client(self, client_id: str) -> ClientRecord:
        """Record of a known client; raises SchedulerError otherwise."""
        try:
            return self._clients[client_id]
        except KeyError:
            raise SchedulerError(f"unknown client {client_id!r}") from None

    def add_workunits(self, workunits: list[Workunit]) -> None:
        """Publish new workunits (one epoch's subtasks)."""
        for wu in workunits:
            if wu.wu_id in self._workunits:
                raise SchedulerError(f"duplicate workunit id {wu.wu_id!r}")
            wu.created_at = self.sim.now
            self._workunits[wu.wu_id] = wu
            self._unsent.append(wu.wu_id)
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "sched.created",
                    wu=wu.wu_id,
                    epoch=wu.epoch,
                    shard=wu.shard_index,
                )

    def get_workunit(self, wu_id: str) -> Workunit:
        """Look up a workunit by id; raises SchedulerError if unknown."""
        try:
            return self._workunits[wu_id]
        except KeyError:
            raise SchedulerError(f"unknown workunit {wu_id!r}") from None

    # -- assignment ---------------------------------------------------------
    def request_work(
        self, client_id: str, sticky_names: set[str], max_units: int
    ) -> list[Workunit]:
        """Hand out up to ``max_units`` workunits to ``client_id``."""
        record = self.register_client(client_id)
        if max_units <= 0:
            return []
        if self.sim.now < record.backoff_until:
            return []
        if (
            self.config.reliability_enabled
            and record.reliability < self.config.probation_threshold
        ):
            # Probation: flaky client gets at most one unit at a time.
            max_units = min(max_units, 1) if not record.assigned else 0
        granted: list[Workunit] = []
        while len(granted) < max_units and self._unsent:
            wu_id = self._pick_unsent(sticky_names, record)
            if wu_id is None:
                break  # nothing this host is eligible for
            wu = self._workunits[wu_id]
            attempt = wu.mark_sent(client_id, self.sim.now)
            record.assigned.add(wu_id)
            record.seen_logical.add(logical_id(wu_id))
            idx = wu.num_attempts - 1
            handle = self.sim.schedule(
                self.config.timeout_s,
                lambda w=wu, i=idx, c=client_id: self._handle_timeout(w, i, c),
                label=f"timeout:{wu_id}",
            )
            self._timeout_handles[(wu_id, idx)] = handle
            granted.append(wu)
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "sched.assign",
                    wu=wu.wu_id,
                    client=client_id,
                    attempt=idx,
                )
        return granted

    def _pick_unsent(
        self, sticky_names: set[str], record: ClientRecord
    ) -> str | None:
        """Choose the next workunit the host is eligible for.

        Honours sticky-file affinity first, then FIFO.  With
        ``one_result_per_host``, a host is skipped for replicas of logical
        units it has already been sent (a timed-out host retrying its own
        unit is still allowed — it holds the only replica).
        """
        eligible_positions = [
            pos
            for pos, wu_id in enumerate(self._unsent)
            if self._eligible(wu_id, record)
        ]
        if not eligible_positions:
            return None
        if self.config.affinity_enabled and sticky_names:
            for pos in eligible_positions:
                wu_id = self._unsent[pos]
                if self._workunits[wu_id].shard_file() in sticky_names:
                    return self._unsent.pop(pos)
        return self._unsent.pop(eligible_positions[0])

    def _eligible(self, wu_id: str, record: ClientRecord) -> bool:
        if not self.config.one_result_per_host:
            return True
        logical = logical_id(wu_id)
        if logical not in record.seen_logical:
            return True
        # Retrying the exact same physical unit (after its own timeout) is
        # allowed; computing a *sibling* replica is not.
        wu = self._workunits[wu_id]
        return any(a.client_id == record.client_id for a in wu.attempts)

    # -- result / failure reporting ------------------------------------------
    def report_result(self, wu_id: str, client_id: str) -> bool:
        """A result file arrived.  Returns False if it is stale (the attempt
        already timed out and the unit was reissued) — stale results are
        discarded, as BOINC does once a workunit has been handed elsewhere."""
        wu = self.get_workunit(wu_id)
        record = self.register_client(client_id)
        record.assigned.discard(wu_id)
        if wu.state is not WorkunitState.IN_PROGRESS or wu.current_attempt.client_id != client_id:
            self._bump_reliability(record, success=False)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "sched.stale_result", wu=wu_id, client=client_id)
            return False
        idx = wu.num_attempts - 1
        handle = self._timeout_handles.pop((wu_id, idx), None)
        if handle is not None:
            handle.cancel()
        wu.mark_result_received(self.sim.now)
        record.completed += 1
        self._bump_reliability(record, success=True)
        return True

    def report_heartbeat(self, wu_id: str, client_id: str) -> bool:
        """Progress report from a client still computing ``wu_id``.

        Slides the attempt's deadline to ``now + timeout_s``.  Returns False
        (and changes nothing) when the report is stale — the unit already
        timed out, completed, or belongs to another client now.
        """
        if not self.config.heartbeats_enabled:
            return False
        wu = self.get_workunit(wu_id)
        if (
            wu.state is not WorkunitState.IN_PROGRESS
            or wu.current_attempt.client_id != client_id
        ):
            return False
        idx = wu.num_attempts - 1
        handle = self._timeout_handles.pop((wu_id, idx), None)
        if handle is not None:
            handle.cancel()
        wu.current_attempt.deadline = self.sim.now + self.config.timeout_s
        self._timeout_handles[(wu_id, idx)] = self.sim.schedule(
            self.config.timeout_s,
            lambda w=wu, i=idx, c=client_id: self._handle_timeout(w, i, c),
            label=f"timeout:{wu_id}",
        )
        self.heartbeats += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "sched.heartbeat", wu=wu_id, client=client_id)
        return True

    def report_client_failure(self, client_id: str) -> list[Workunit]:
        """Client died (preemption/crash): fail all its in-flight workunits.

        Returns the workunits that were requeued so the caller can observe
        them; exhausted ones land in ERROR.
        """
        record = self.register_client(client_id)
        requeued: list[Workunit] = []
        for wu_id in sorted(record.assigned):
            wu = self._workunits[wu_id]
            if wu.state is not WorkunitState.IN_PROGRESS:
                continue
            idx = wu.num_attempts - 1
            handle = self._timeout_handles.pop((wu_id, idx), None)
            if handle is not None:
                handle.cancel()
            if wu.mark_client_error(self.sim.now):
                self._unsent.append(wu_id)
                self.reissues += 1
                requeued.append(wu)
            elif self.trace is not None:
                self.trace.emit(
                    self.sim.now, "sched.exhausted", wu=wu_id, via="client_error"
                )
            record.failed += 1
            self._bump_reliability(record, success=False)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "sched.client_error", wu=wu_id, client=client_id)
        record.assigned.clear()
        return requeued

    def cancel_workunit(self, wu_id: str) -> str | None:
        """Server-side abort of a pending/running workunit.

        Returns the client id that was computing it (so the server can tell
        that client to stop), or None if it was unsent or already terminal.
        """
        wu = self.get_workunit(wu_id)
        if wu.is_terminal or wu.state is WorkunitState.VALIDATING:
            return None
        computing_client: str | None = None
        if wu.state is WorkunitState.IN_PROGRESS:
            computing_client = wu.current_attempt.client_id
            idx = wu.num_attempts - 1
            handle = self._timeout_handles.pop((wu_id, idx), None)
            if handle is not None:
                handle.cancel()
            self.register_client(computing_client).assigned.discard(wu_id)
        else:  # UNSENT: pull it out of the queue
            try:
                self._unsent.remove(wu_id)
            except ValueError:
                pass
        wu.mark_cancelled(self.sim.now)
        self.cancellations += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "sched.cancelled", wu=wu_id)
        return computing_client

    def requeue_after_invalid(self, wu_id: str) -> bool:
        """Validator rejected the result; retry if budget remains."""
        wu = self.get_workunit(wu_id)
        retry = wu.mark_invalid(self.sim.now)
        if retry:
            self._unsent.append(wu_id)
            self.reissues += 1
        elif self.trace is not None:
            self.trace.emit(self.sim.now, "sched.exhausted", wu=wu_id, via="invalid")
        return retry

    # -- timeouts ---------------------------------------------------------
    def _handle_timeout(self, wu: Workunit, attempt_idx: int, client_id: str) -> None:
        self._timeout_handles.pop((wu.wu_id, attempt_idx), None)
        if wu.state is not WorkunitState.IN_PROGRESS or wu.num_attempts - 1 != attempt_idx:
            return  # result arrived and was processed first
        record = self.register_client(client_id)
        record.assigned.discard(wu.wu_id)
        record.failed += 1
        self._bump_reliability(record, success=False)
        self.timeouts += 1
        if wu.mark_timeout(self.sim.now):
            self._unsent.append(wu.wu_id)
            self.reissues += 1
        elif self.trace is not None:
            self.trace.emit(self.sim.now, "sched.exhausted", wu=wu.wu_id, via="timeout")
        if self.trace is not None:
            self.trace.emit(self.sim.now, "sched.timeout", wu=wu.wu_id, client=client_id)
        if self.on_timeout is not None:
            self.on_timeout(wu.wu_id, client_id)

    def _bump_reliability(self, record: ClientRecord, success: bool) -> None:
        if self.config.reliability_enabled:
            d = self.config.reliability_decay
            record.reliability = (
                d * record.reliability + (1.0 - d) * (1.0 if success else 0.0)
            )
        if success:
            record.consecutive_failures = 0
            record.backoff_until = 0.0
        else:
            delay = min(
                self.config.backoff_base_s * 2.0**record.consecutive_failures,
                self.config.backoff_max_s,
            )
            record.consecutive_failures += 1
            record.backoff_until = self.sim.now + delay

    # -- stats ----------------------------------------------------------------
    def unsent_count(self) -> int:
        """Workunits currently queued for assignment."""
        return len(self._unsent)

    def in_progress_count(self) -> int:
        """Workunits currently executing on some client."""
        return sum(
            1 for wu in self._workunits.values() if wu.state is WorkunitState.IN_PROGRESS
        )

    def terminal_count(self) -> int:
        """Workunits in a terminal state (done/error/cancelled)."""
        return sum(1 for wu in self._workunits.values() if wu.is_terminal)

    def all_terminal(self) -> bool:
        """True when every published workunit reached a terminal state."""
        return all(wu.is_terminal for wu in self._workunits.values())
