"""BOINC-like scheduler: workunit assignment, timeouts, reliability (§III-B).

The scheduler is pull-based: clients request work when they have free
execution slots.  Three policies from the paper are implemented:

* **timeout + reissue** — every issued workunit carries a deadline; when
  the deadline passes without a result the workunit returns to the unsent
  queue (fault tolerance against preempted/dead clients);
* **sticky-file affinity** — among unsent workunits, prefer ones whose
  data shard the requesting client already caches (avoids re-downloads);
* **reliability tracking** — per-client EWMA of attempt outcomes; clients
  below a reliability floor are put on probation (one workunit at a time)
  so chronically flaky nodes can't hoard work.

Fleet-scale design: per-event cost must not depend on fleet size.  The
ready queue is indexed (see :mod:`repro.boinc.ready_queue`), in-progress
and terminal counts are maintained incrementally off workunit state
transitions, and the **ping + server-suggested-sleep** protocol
(:meth:`Scheduler.ping`) lets an idle fleet of any size park itself: a
ping that grants nothing returns a sleep hint derived from the client's
failure backoff, the queue depth, and assimilation backpressure, and the
client registers a wake callback so new work rouses exactly as many idle
hosts as there are new units — never the whole fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import SchedulerError
from ..simulation.engine import Simulator
from ..simulation.events import EventHandle
from ..simulation.tracing import Trace
from .ready_queue import QUEUE_IMPLS, make_ready_queue
from .replication import logical_id
from .workunit import Workunit, WorkunitState

__all__ = ["SchedulerConfig", "ClientRecord", "Scheduler", "WORK_FETCH_MODES"]

# Work-fetch protocols: "poke" is the legacy broadcast (server poll of
# every client on publish), "ping" is the fleet-scale pull protocol.
WORK_FETCH_MODES = ("poke", "ping")


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler policy knobs (paper defaults: t_o = 5 min, 5 attempts)."""

    timeout_s: float = 300.0
    max_attempts: int = 5
    affinity_enabled: bool = True
    reliability_enabled: bool = True
    reliability_decay: float = 0.8  # EWMA weight on history
    probation_threshold: float = 0.3
    # Work-fetch backoff after a failure (BOINC clients back off after
    # errors); doubles per consecutive failure up to the cap.
    backoff_base_s: float = 60.0
    backoff_max_s: float = 3600.0
    # BOINC's replication rule: a host may compute at most one replica of
    # any logical workunit (redundant results must come from distinct
    # hosts to be meaningful for verification).
    one_result_per_host: bool = True
    # Trickle-style progress heartbeats: a client computing a long subtask
    # periodically reports progress, and each report slides the deadline
    # forward (dead clients stop reporting and still time out).  Guards
    # slow-but-alive heterogeneous nodes against spurious reissues.
    heartbeats_enabled: bool = False
    heartbeat_interval_s: float = 60.0
    # Ready-queue implementation: "indexed" (O(1) amortized per event) or
    # "legacy" (the original full-scan list).  Grant order is proven
    # identical by the equivalence property test, so "indexed" is the
    # default; "legacy" remains as the bit-for-bit reference.
    queue_impl: str = "indexed"
    # Work-fetch protocol (consumed by BoincServer/ClientDaemon): "poke"
    # keeps the legacy broadcast wake-up, "ping" switches the fleet to the
    # ping + server-suggested-sleep contract.
    work_fetch: str = "poke"
    # Sleep-hint shaping for ping mode: a host that found a non-empty
    # queue but was granted nothing (ineligible / probation) retries
    # after ``ping_busy_s``; a host that found an empty queue sleeps
    # ``ping_idle_base_s`` doubling per consecutive empty ping up to
    # ``ping_idle_max_s``.
    ping_busy_s: float = 5.0
    ping_idle_base_s: float = 30.0
    ping_idle_max_s: float = 1800.0
    # Quarantine loop (Byzantine defense): a host whose results are
    # invalidated (validator reject or quorum loss) this many times is
    # barred from further assignment.  0 disables the loop entirely — the
    # historical behaviour, where invalid results never fed back into
    # scheduling.
    quarantine_after: int = 0

    def __post_init__(self) -> None:
        if self.quarantine_after < 0:
            raise SchedulerError("quarantine_after must be non-negative")
        if self.queue_impl not in QUEUE_IMPLS:
            raise SchedulerError(
                f"unknown queue_impl {self.queue_impl!r}; use one of {QUEUE_IMPLS}"
            )
        if self.work_fetch not in WORK_FETCH_MODES:
            raise SchedulerError(
                f"unknown work_fetch {self.work_fetch!r}; use one of {WORK_FETCH_MODES}"
            )
        if self.ping_busy_s <= 0 or self.ping_idle_base_s <= 0:
            raise SchedulerError("ping sleep hints must be positive")
        if self.ping_idle_max_s < self.ping_idle_base_s:
            raise SchedulerError("ping_idle_max_s must be >= ping_idle_base_s")


@dataclass
class ClientRecord:
    """Scheduler-side view of one client."""

    client_id: str
    reliability: float = 1.0  # optimistic prior, decays on failures
    assigned: set[str] = field(default_factory=set)  # wu_ids in flight
    completed: int = 0
    failed: int = 0
    consecutive_failures: int = 0
    backoff_until: float = 0.0  # no work granted before this sim time
    # Logical workunit ids this host has ever been sent a replica of.
    seen_logical: set[str] = field(default_factory=set)
    # Consecutive pings that found an empty queue (drives idle-hint growth).
    empty_pings: int = 0
    # Byzantine-defense bookkeeping: results invalidated (validator reject
    # or quorum loss) and whether the host crossed the quarantine bar.
    invalid_results: int = 0
    quarantined: bool = False


class Scheduler:
    """Assigns workunits to clients and polices deadlines."""

    def __init__(
        self,
        sim: Simulator,
        config: SchedulerConfig | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.sim = sim
        self.config = config or SchedulerConfig()
        self.trace = trace
        self._workunits: dict[str, Workunit] = {}
        self._ready = make_ready_queue(self.config.queue_impl)
        self._clients: dict[str, ClientRecord] = {}
        self._timeout_handles: dict[tuple[str, int], EventHandle] = {}
        # Incremental state counters, fed by the workunit transition
        # observer — all_terminal()/in_progress_count() are O(1).
        self._num_in_progress = 0
        self._num_terminal = 0
        # Idle waiters (ping mode): client_id -> wake callback, FIFO.  New
        # work wakes min(new units, waiters) hosts, never the whole fleet.
        self._waiters: dict[str, Callable[[], None]] = {}
        # Hook the server/client layer sets to learn about timeouts so the
        # executing client can abort the stale task.
        self.on_timeout = None  # Callable[[str wu_id, str client_id], None]
        # Optional assimilation-backpressure probe (seconds of extra sleep
        # to suggest when the server-side merge pipeline is saturated);
        # wired by the runner to the parameter-server pool.
        self.backpressure_fn: Callable[[], float] | None = None
        self.timeouts = 0
        self.reissues = 0
        self.heartbeats = 0
        self.cancellations = 0
        self.pings = 0
        self.stale_heartbeats = 0
        self.hosts_quarantined = 0

    # -- registration -----------------------------------------------------
    def register_client(self, client_id: str) -> ClientRecord:
        """Fetch-or-create the scheduler-side record for a client."""
        record = self._clients.get(client_id)
        if record is None:
            record = ClientRecord(client_id=client_id)
            self._clients[client_id] = record
        return record

    def client(self, client_id: str) -> ClientRecord:
        """Record of a known client; raises SchedulerError otherwise."""
        try:
            return self._clients[client_id]
        except KeyError:
            raise SchedulerError(f"unknown client {client_id!r}") from None

    def add_workunits(self, workunits: list[Workunit]) -> None:
        """Publish new workunits (one epoch's subtasks)."""
        for wu in workunits:
            if wu.wu_id in self._workunits:
                raise SchedulerError(f"duplicate workunit id {wu.wu_id!r}")
            wu.created_at = self.sim.now
            wu._observer = self._on_wu_transition
            self._workunits[wu.wu_id] = wu
            self._ready.push(wu.wu_id, wu.shard_file())
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "sched.created",
                    wu=wu.wu_id,
                    epoch=wu.epoch,
                    shard=wu.shard_index,
                )
        self._wake_waiters(len(workunits))

    def get_workunit(self, wu_id: str) -> Workunit:
        """Look up a workunit by id; raises SchedulerError if unknown."""
        try:
            return self._workunits[wu_id]
        except KeyError:
            raise SchedulerError(f"unknown workunit {wu_id!r}") from None

    def _on_wu_transition(
        self, wu: Workunit, old: WorkunitState, new: WorkunitState
    ) -> None:
        if old is WorkunitState.IN_PROGRESS:
            self._num_in_progress -= 1
        if new is WorkunitState.IN_PROGRESS:
            self._num_in_progress += 1
        terminal = (WorkunitState.DONE, WorkunitState.ERROR, WorkunitState.CANCELLED)
        if new in terminal and old not in terminal:
            self._num_terminal += 1

    # -- assignment ---------------------------------------------------------
    def request_work(
        self, client_id: str, sticky_names: set[str], max_units: int
    ) -> list[Workunit]:
        """Hand out up to ``max_units`` workunits to ``client_id``."""
        record = self.register_client(client_id)
        if max_units <= 0:
            return []
        if record.quarantined:
            return []
        if self.sim.now < record.backoff_until:
            return []
        if (
            self.config.reliability_enabled
            and record.reliability < self.config.probation_threshold
        ):
            # Probation: flaky client gets at most one unit at a time.
            max_units = min(max_units, 1) if not record.assigned else 0
        granted: list[Workunit] = []
        while len(granted) < max_units and len(self._ready) > 0:
            wu_id = self._pick_unsent(sticky_names, record)
            if wu_id is None:
                break  # nothing this host is eligible for
            wu = self._workunits[wu_id]
            attempt = wu.mark_sent(client_id, self.sim.now)
            record.assigned.add(wu_id)
            record.seen_logical.add(logical_id(wu_id))
            idx = wu.num_attempts - 1
            handle = self.sim.schedule(
                self.config.timeout_s,
                lambda w=wu, i=idx, c=client_id: self._handle_timeout(w, i, c),
                label=f"timeout:{wu_id}",
            )
            self._timeout_handles[(wu_id, idx)] = handle
            granted.append(wu)
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "sched.assign",
                    wu=wu.wu_id,
                    client=client_id,
                    attempt=idx,
                )
        return granted

    def _pick_unsent(
        self, sticky_names: set[str], record: ClientRecord
    ) -> str | None:
        """Choose the next workunit the host is eligible for.

        Honours sticky-file affinity first, then FIFO.  With
        ``one_result_per_host``, a host is skipped for replicas of logical
        units it has already been sent (a timed-out host retrying its own
        unit is still allowed — it holds the only replica).  Eligibility is
        evaluated lazily inside the ready queue's pick.
        """
        sticky = sticky_names if (self.config.affinity_enabled and sticky_names) else ()
        return self._ready.pick(
            sticky,
            lambda wu_id: self._workunits[wu_id].shard_file(),
            lambda wu_id: self._eligible(wu_id, record),
        )

    def _eligible(self, wu_id: str, record: ClientRecord) -> bool:
        if not self.config.one_result_per_host:
            return True
        logical = logical_id(wu_id)
        if logical not in record.seen_logical:
            return True
        # Retrying the exact same physical unit (after its own timeout) is
        # allowed; computing a *sibling* replica is not.
        wu = self._workunits[wu_id]
        return any(a.client_id == record.client_id for a in wu.attempts)

    # -- ping + server-suggested-sleep protocol ------------------------------
    def ping(
        self,
        client_id: str,
        sticky_names: set[str],
        max_units: int,
        wake: Callable[[], None] | None = None,
    ) -> tuple[list[Workunit], float]:
        """One work-fetch ping: grant work, or suggest how long to sleep.

        Returns ``(granted, sleep_hint_s)``.  When nothing is granted the
        hint tells the client when to ping again; if ``wake`` is given the
        client is also parked as an idle waiter and is roused early (FIFO)
        when new work arrives — the hint is then only a liveness fallback.
        """
        record = self.register_client(client_id)
        self.pings += 1
        # A pinging client is by definition awake; drop any stale parking.
        self._waiters.pop(client_id, None)
        granted = self.request_work(client_id, sticky_names, max_units)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "sched.ping", client=client_id, granted=len(granted)
            )
        if granted:
            record.empty_pings = 0
            return granted, 0.0
        hint, reason = self._sleep_hint(record)
        if wake is not None:
            self._waiters[client_id] = wake
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "sched.sleep_hint",
                client=client_id,
                hint_s=hint,
                reason=reason,
            )
        return [], hint

    def _sleep_hint(self, record: ClientRecord) -> tuple[float, str]:
        """Backoff-, queue-depth- and probation-derived sleep suggestion."""
        cfg = self.config
        if record.quarantined:
            # No amount of waiting makes a quarantined host eligible again;
            # park it for the maximum idle interval.
            return cfg.ping_idle_max_s, "quarantined"
        if self.sim.now < record.backoff_until:
            # Failure backoff dominates: no grant can happen before expiry.
            return record.backoff_until - self.sim.now + 1e-6, "backoff"
        if len(self._ready) > 0:
            # Work exists but this host can't take it right now (probation
            # hold or one-result-per-host ineligibility): short retry.
            if (
                cfg.reliability_enabled
                and record.reliability < cfg.probation_threshold
                and record.assigned
            ):
                return cfg.ping_busy_s, "probation"
            return cfg.ping_busy_s, "ineligible"
        # Empty queue: idle hint doubles per consecutive empty ping, plus
        # any assimilation backpressure the server reports.
        record.empty_pings += 1
        exponent = min(record.empty_pings - 1, 20)
        hint = min(cfg.ping_idle_base_s * 2.0**exponent, cfg.ping_idle_max_s)
        if self.backpressure_fn is not None:
            hint += max(0.0, float(self.backpressure_fn()))
        return hint, "idle"

    def cancel_waiter(self, client_id: str) -> None:
        """Forget a parked idle waiter (client terminating)."""
        self._waiters.pop(client_id, None)

    def _wake_waiters(self, new_units: int) -> None:
        """Rouse up to ``new_units`` parked clients, FIFO — O(new work),
        never O(fleet)."""
        count = min(new_units, len(self._waiters))
        for _ in range(count):
            client_id = next(iter(self._waiters))
            wake = self._waiters.pop(client_id)
            self.sim.schedule(0.0, wake, label=f"sched:wake:{client_id}")

    # -- result / failure reporting ------------------------------------------
    def report_result(self, wu_id: str, client_id: str) -> bool:
        """A result file arrived.  Returns False if it is stale (the attempt
        already timed out and the unit was reissued) — stale results are
        discarded, as BOINC does once a workunit has been handed elsewhere."""
        wu = self.get_workunit(wu_id)
        record = self.register_client(client_id)
        record.assigned.discard(wu_id)
        if wu.state is not WorkunitState.IN_PROGRESS or wu.current_attempt.client_id != client_id:
            self._bump_reliability(record, success=False)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "sched.stale_result", wu=wu_id, client=client_id)
            return False
        idx = wu.num_attempts - 1
        handle = self._timeout_handles.pop((wu_id, idx), None)
        if handle is not None:
            handle.cancel()
        wu.mark_result_received(self.sim.now)
        record.completed += 1
        self._bump_reliability(record, success=True)
        return True

    def report_heartbeat(self, wu_id: str, client_id: str) -> bool:
        """Progress report from a client still computing ``wu_id``.

        Slides the attempt's deadline to ``now + timeout_s``.  Returns False
        (and changes nothing) when the report is stale — the unit already
        timed out, completed, or belongs to another client now.
        """
        if not self.config.heartbeats_enabled:
            return False
        wu = self.get_workunit(wu_id)
        if (
            wu.state is not WorkunitState.IN_PROGRESS
            or wu.current_attempt.client_id != client_id
        ):
            self.stale_heartbeats += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "sched.stale_heartbeat", wu=wu_id, client=client_id
                )
            return False
        idx = wu.num_attempts - 1
        handle = self._timeout_handles.pop((wu_id, idx), None)
        if handle is not None:
            handle.cancel()
        wu.current_attempt.deadline = self.sim.now + self.config.timeout_s
        self._timeout_handles[(wu_id, idx)] = self.sim.schedule(
            self.config.timeout_s,
            lambda w=wu, i=idx, c=client_id: self._handle_timeout(w, i, c),
            label=f"timeout:{wu_id}",
        )
        self.heartbeats += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "sched.heartbeat", wu=wu_id, client=client_id)
        return True

    def report_client_failure(self, client_id: str) -> list[Workunit]:
        """Client died (preemption/crash): fail all its in-flight workunits.

        Returns the workunits that were requeued so the caller can observe
        them; exhausted ones land in ERROR.
        """
        record = self.register_client(client_id)
        requeued: list[Workunit] = []
        for wu_id in sorted(record.assigned):
            wu = self._workunits[wu_id]
            if wu.state is not WorkunitState.IN_PROGRESS:
                continue
            idx = wu.num_attempts - 1
            handle = self._timeout_handles.pop((wu_id, idx), None)
            if handle is not None:
                handle.cancel()
            if wu.mark_client_error(self.sim.now):
                self._ready.push(wu_id, wu.shard_file())
                self.reissues += 1
                requeued.append(wu)
            elif self.trace is not None:
                self.trace.emit(
                    self.sim.now, "sched.exhausted", wu=wu_id, via="client_error"
                )
            record.failed += 1
            self._bump_reliability(record, success=False)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "sched.client_error", wu=wu_id, client=client_id)
        record.assigned.clear()
        self._wake_waiters(len(requeued))
        return requeued

    def cancel_workunit(self, wu_id: str) -> str | None:
        """Server-side abort of a pending/running workunit.

        Returns the client id that was computing it (so the server can tell
        that client to stop), or None if it was unsent or already terminal.
        """
        wu = self.get_workunit(wu_id)
        if wu.is_terminal or wu.state is WorkunitState.VALIDATING:
            return None
        computing_client: str | None = None
        if wu.state is WorkunitState.IN_PROGRESS:
            computing_client = wu.current_attempt.client_id
            idx = wu.num_attempts - 1
            handle = self._timeout_handles.pop((wu_id, idx), None)
            if handle is not None:
                handle.cancel()
            self.register_client(computing_client).assigned.discard(wu_id)
        else:  # UNSENT: pull it out of the queue
            if not self._ready.remove(wu_id):
                # An UNSENT workunit absent from the ready queue means the
                # scheduler's books are inconsistent — never swallow it.
                raise SchedulerError(
                    f"workunit {wu_id!r} is UNSENT but missing from the "
                    "ready queue; scheduler state is inconsistent"
                )
        wu.mark_cancelled(self.sim.now)
        self.cancellations += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "sched.cancelled", wu=wu_id)
        return computing_client

    def record_invalid_result(self, client_id: str) -> bool:
        """Charge one invalidated result (validator reject or quorum loss)
        against the host's record.

        Only called when the Byzantine defenses are enabled (quarantine or
        collusion guard) — the historical path never fed invalid results
        back into scheduling, and default runs stay bit-identical.  The
        penalty rides the existing reliability EWMA, so a repeatedly
        invalidated host first falls into the ping-protocol probation path
        and, once ``quarantine_after`` invalidations accumulate, is barred
        from assignment outright.  Returns True when this call newly
        quarantined the host.
        """
        record = self.register_client(client_id)
        record.invalid_results += 1
        self._bump_reliability(record, success=False)
        if (
            self.config.quarantine_after > 0
            and record.invalid_results >= self.config.quarantine_after
            and not record.quarantined
        ):
            record.quarantined = True
            self.hosts_quarantined += 1
            return True
        return False

    def requeue_after_invalid(self, wu_id: str) -> bool:
        """Validator rejected the result; retry if budget remains."""
        wu = self.get_workunit(wu_id)
        retry = wu.mark_invalid(self.sim.now)
        if retry:
            self._ready.push(wu_id, wu.shard_file())
            self.reissues += 1
            self._wake_waiters(1)
        elif self.trace is not None:
            self.trace.emit(self.sim.now, "sched.exhausted", wu=wu_id, via="invalid")
        return retry

    # -- timeouts ---------------------------------------------------------
    def _handle_timeout(self, wu: Workunit, attempt_idx: int, client_id: str) -> None:
        self._timeout_handles.pop((wu.wu_id, attempt_idx), None)
        if wu.state is not WorkunitState.IN_PROGRESS or wu.num_attempts - 1 != attempt_idx:
            return  # result arrived and was processed first
        record = self.register_client(client_id)
        record.assigned.discard(wu.wu_id)
        record.failed += 1
        self._bump_reliability(record, success=False)
        self.timeouts += 1
        if wu.mark_timeout(self.sim.now):
            self._ready.push(wu.wu_id, wu.shard_file())
            self.reissues += 1
            self._wake_waiters(1)
        elif self.trace is not None:
            self.trace.emit(self.sim.now, "sched.exhausted", wu=wu.wu_id, via="timeout")
        if self.trace is not None:
            self.trace.emit(self.sim.now, "sched.timeout", wu=wu.wu_id, client=client_id)
        if self.on_timeout is not None:
            self.on_timeout(wu.wu_id, client_id)

    def _bump_reliability(self, record: ClientRecord, success: bool) -> None:
        if self.config.reliability_enabled:
            d = self.config.reliability_decay
            record.reliability = (
                d * record.reliability + (1.0 - d) * (1.0 if success else 0.0)
            )
        if success:
            record.consecutive_failures = 0
            record.backoff_until = 0.0
        else:
            delay = min(
                self.config.backoff_base_s * 2.0**record.consecutive_failures,
                self.config.backoff_max_s,
            )
            record.consecutive_failures += 1
            record.backoff_until = self.sim.now + delay

    # -- stats ----------------------------------------------------------------
    def unsent_count(self) -> int:
        """Workunits currently queued for assignment."""
        return len(self._ready)

    def unsent_ids(self) -> list[str]:
        """Queued workunit ids in FIFO order (introspection/tests)."""
        return self._ready.snapshot()

    def in_progress_count(self) -> int:
        """Workunits currently executing on some client (O(1))."""
        return self._num_in_progress

    def terminal_count(self) -> int:
        """Workunits in a terminal state (done/error/cancelled) (O(1))."""
        return self._num_terminal

    def all_terminal(self) -> bool:
        """True when every published workunit reached a terminal state."""
        return self._num_terminal == len(self._workunits)
