"""Ready-queue implementations for the scheduler's unsent workunits.

The scheduler's grant path used to be a Python list plus a full scan per
request — O(n) per grant and O(n) per mid-queue removal, which caps the
fleet size the simulation can carry (ROADMAP: "Million-client fleet
scale").  This module provides two interchangeable implementations:

* :class:`IndexedReadyQueue` — the fleet-scale structure: a monotonic
  sequence number per enqueue, a live-membership dict (O(1) contains /
  remove), an append-only FIFO deque, and a per-shard-file affinity
  index so sticky matching is a dict lookup instead of a scan.  Stale
  deque entries (removed or re-enqueued ids) are discarded lazily when
  they surface at a deque head, so amortized cost per enqueue/pick is
  O(1) plus the length of the *ineligible* prefix actually inspected.

* :class:`LegacyListQueue` — the original list + full-scan semantics,
  kept verbatim behind a config switch so equivalence can be proven
  property-by-property (see tests/boinc/test_scheduler_equivalence.py)
  and seed runs can be pinned bit-identical during the migration.

Both honour the same pick contract, matching the historical scan order
exactly: among *eligible* entries (eligibility is evaluated lazily at
pick time against the requesting host), prefer the earliest-enqueued one
whose shard file the host already caches; otherwise the earliest-enqueued
eligible entry; None when no entry is eligible.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

__all__ = ["ReadyQueue", "LegacyListQueue", "IndexedReadyQueue", "make_ready_queue"]

QUEUE_IMPLS = ("indexed", "legacy")


class ReadyQueue:
    """Interface both queue implementations satisfy."""

    def push(self, wu_id: str, shard_file: str) -> None:
        raise NotImplementedError

    def remove(self, wu_id: str) -> bool:
        """Drop ``wu_id`` from the queue; True if it was present."""
        raise NotImplementedError

    def pick(
        self,
        sticky_names: Iterable[str],
        shard_of: Callable[[str], str],
        eligible: Callable[[str], bool],
    ) -> str | None:
        """Pop and return the next workunit for a host, or None.

        ``sticky_names`` is the host's cached-file set (empty disables
        affinity); ``eligible`` is the host's lazy eligibility predicate.
        """
        raise NotImplementedError

    def snapshot(self) -> list[str]:
        """Queued ids in FIFO order (introspection/tests only)."""
        raise NotImplementedError

    def __contains__(self, wu_id: str) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LegacyListQueue(ReadyQueue):
    """The original ``_unsent`` list with its full-scan pick."""

    def __init__(self) -> None:
        self._unsent: list[str] = []

    def push(self, wu_id: str, shard_file: str) -> None:
        self._unsent.append(wu_id)

    def remove(self, wu_id: str) -> bool:
        try:
            self._unsent.remove(wu_id)
        except ValueError:
            return False
        return True

    def pick(self, sticky_names, shard_of, eligible):
        eligible_positions = [
            pos for pos, wu_id in enumerate(self._unsent) if eligible(wu_id)
        ]
        if not eligible_positions:
            return None
        if sticky_names:
            for pos in eligible_positions:
                wu_id = self._unsent[pos]
                if shard_of(wu_id) in sticky_names:
                    return self._unsent.pop(pos)
        return self._unsent.pop(eligible_positions[0])

    def snapshot(self) -> list[str]:
        return list(self._unsent)

    def __contains__(self, wu_id: str) -> bool:
        return wu_id in self._unsent

    def __len__(self) -> int:
        return len(self._unsent)


class IndexedReadyQueue(ReadyQueue):
    """Seq-stamped FIFO + per-shard affinity buckets, lazy stale cleanup.

    Every enqueue stamps the id with a fresh sequence number and appends
    ``(seq, wu_id)`` to both the global FIFO deque and the id's shard
    bucket.  ``self._live`` maps each queued id to its *current* seq, so
    membership/removal are dict ops and any deque entry whose seq no
    longer matches is stale garbage, dropped when it reaches a deque
    head.  FIFO order is "by latest enqueue", exactly like the legacy
    list's remove-then-append behaviour on requeue.
    """

    def __init__(self) -> None:
        self._seq = 0
        self._live: dict[str, int] = {}  # wu_id -> current seq
        self._fifo: deque[tuple[int, str]] = deque()
        self._buckets: dict[str, deque[tuple[int, str]]] = {}

    def push(self, wu_id: str, shard_file: str) -> None:
        self._seq += 1
        self._live[wu_id] = self._seq
        entry = (self._seq, wu_id)
        self._fifo.append(entry)
        self._buckets.setdefault(shard_file, deque()).append(entry)

    def remove(self, wu_id: str) -> bool:
        # Deque entries for the id become stale and are purged lazily.
        return self._live.pop(wu_id, None) is not None

    def _trim(self, dq: deque) -> None:
        """Drop stale entries sitting at the head of a deque."""
        live = self._live
        while dq and live.get(dq[0][1]) != dq[0][0]:
            dq.popleft()

    def _first_eligible(
        self, dq: deque, eligible: Callable[[str], bool], stop_seq: int | None
    ) -> tuple[int, str] | None:
        """Earliest live+eligible entry in ``dq`` with seq < stop_seq.

        Only head stales are physically removed; mid-deque stales are
        skipped (they will be removed once everything before them is
        gone).
        """
        self._trim(dq)
        live = self._live
        for seq, wu_id in dq:
            if stop_seq is not None and seq >= stop_seq:
                return None  # entries are seq-ascending: nothing better deeper
            if live.get(wu_id) != seq:
                continue  # stale mid-deque entry
            if eligible(wu_id):
                return (seq, wu_id)
        return None

    def pick(self, sticky_names, shard_of, eligible):
        best: tuple[int, str] | None = None
        if sticky_names:
            for name in sticky_names:
                bucket = self._buckets.get(name)
                if not bucket:
                    continue
                stop = best[0] if best is not None else None
                found = self._first_eligible(bucket, eligible, stop)
                if found is not None and (best is None or found[0] < best[0]):
                    best = found
        if best is None:
            best = self._first_eligible(self._fifo, eligible, None)
        if best is None:
            return None
        del self._live[best[1]]
        return best[1]

    def snapshot(self) -> list[str]:
        live = self._live
        return [wu_id for seq, wu_id in self._fifo if live.get(wu_id) == seq]

    def __contains__(self, wu_id: str) -> bool:
        return wu_id in self._live

    def __len__(self) -> int:
        return len(self._live)


def make_ready_queue(impl: str) -> ReadyQueue:
    """Build a queue by config name ("indexed" | "legacy")."""
    if impl == "indexed":
        return IndexedReadyQueue()
    if impl == "legacy":
        return LegacyListQueue()
    raise ValueError(f"unknown ready-queue impl {impl!r}; use one of {QUEUE_IMPLS}")
