"""BOINC-like middleware: workunits, scheduler, file services, client daemon."""

from .assimilator import Assimilator, CallbackAssimilator
from .credit import CreditClaim, CreditLedger, HostCredit
from .client import ClientDaemon, TaskExecutor
from .files import FileCatalog, ServerFile, StickyCache, WebServer
from .ready_queue import IndexedReadyQueue, LegacyListQueue, ReadyQueue
from .scheduler import ClientRecord, Scheduler, SchedulerConfig
from .server import BoincServer
from .server_plane import ShardedValidatorPool, ShardedWorkGenerator, plane_of
from .replication import QuorumAssimilator, QuorumConfig, logical_id, replica_id
from .validator import ParameterValidator, ValidationResult
from .work_generator import WorkGenerator
from .workunit import Attempt, Workunit, WorkunitState

__all__ = [
    "CreditClaim",
    "CreditLedger",
    "HostCredit",
    "QuorumAssimilator",
    "QuorumConfig",
    "logical_id",
    "replica_id",
    "Workunit",
    "WorkunitState",
    "Attempt",
    "Scheduler",
    "SchedulerConfig",
    "ClientRecord",
    "FileCatalog",
    "ServerFile",
    "StickyCache",
    "WebServer",
    "ParameterValidator",
    "ValidationResult",
    "Assimilator",
    "CallbackAssimilator",
    "ClientDaemon",
    "TaskExecutor",
    "WorkGenerator",
    "BoincServer",
    "ReadyQueue",
    "IndexedReadyQueue",
    "LegacyListQueue",
    "ShardedWorkGenerator",
    "ShardedValidatorPool",
    "plane_of",
]
