"""Workunit state machine (BOINC terminology, §II-C).

A *workunit* is one training subtask: an epoch number, a data-shard index,
and the names of the input files the client must fetch.  BOINC's fault
tolerance lives in this state machine: a workunit sent to a client that
never reports back is timed out and reissued, up to a retry budget.

States::

    UNSENT ──send──► IN_PROGRESS ──result──► VALIDATING ──ok──► DONE
       ▲                  │                        │
       └────timeout───────┘                        └─invalid─► UNSENT (retry)
       └────client error / preemption──────────────────────────┘

After ``max_attempts`` failed attempts the workunit enters ERROR and the
epoch completes without it (VC-ASGD tolerates missing updates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import WorkunitError

__all__ = ["WorkunitState", "Attempt", "Workunit"]


class WorkunitState(enum.Enum):
    UNSENT = "unsent"
    IN_PROGRESS = "in_progress"
    VALIDATING = "validating"
    DONE = "done"
    ERROR = "error"
    # Server-side abort: a sibling replica reached quorum first, so this
    # copy's computation is no longer needed (BOINC cancels such results).
    CANCELLED = "cancelled"


@dataclass
class Attempt:
    """One issuance of a workunit to a client."""

    client_id: str
    sent_at: float
    deadline: float
    finished_at: float | None = None
    outcome: str = "pending"  # pending | success | timeout | client_error | invalid


@dataclass
class Workunit:
    """A training subtask flowing through the BOINC server."""

    wu_id: str
    job_id: str
    epoch: int
    shard_index: int
    input_files: tuple[str, ...]
    work_units: float  # abstract compute cost (see InstanceSpec docs)
    timeout_s: float
    max_attempts: int = 5
    state: WorkunitState = WorkunitState.UNSENT
    attempts: list[Attempt] = field(default_factory=list)
    result: Any = None
    created_at: float = 0.0
    completed_at: float | None = None
    # Transition observer, set by the scheduler when the workunit is
    # published.  Every state change flows through it so the scheduler can
    # keep incremental in-progress/terminal counters without rescanning —
    # including DONE, which the *server* triggers via mark_valid.
    _observer: Callable[["Workunit", WorkunitState, WorkunitState], None] | None = field(
        default=None, repr=False, compare=False
    )

    def _transition(self, new_state: WorkunitState) -> None:
        old = self.state
        self.state = new_state
        if self._observer is not None:
            self._observer(self, old, new_state)

    # -- transitions ------------------------------------------------------
    def mark_sent(self, client_id: str, now: float) -> Attempt:
        """UNSENT → IN_PROGRESS: record the attempt and its deadline."""
        self._require(WorkunitState.UNSENT, "mark_sent")
        if len(self.attempts) >= self.max_attempts:
            raise WorkunitError(f"{self.wu_id}: attempt budget exhausted")
        attempt = Attempt(client_id=client_id, sent_at=now, deadline=now + self.timeout_s)
        self.attempts.append(attempt)
        self._transition(WorkunitState.IN_PROGRESS)
        return attempt

    def mark_result_received(self, now: float) -> None:
        """IN_PROGRESS → VALIDATING (result uploaded, awaiting validation)."""
        self._require(WorkunitState.IN_PROGRESS, "mark_result_received")
        self.current_attempt.finished_at = now
        self._transition(WorkunitState.VALIDATING)

    def mark_valid(self, now: float, result: Any) -> None:
        """VALIDATING → DONE."""
        self._require(WorkunitState.VALIDATING, "mark_valid")
        self.current_attempt.outcome = "success"
        self.result = result
        self.completed_at = now
        self._transition(WorkunitState.DONE)

    def mark_invalid(self, now: float) -> bool:
        """VALIDATING → UNSENT (retry) or ERROR. Returns True if retryable."""
        self._require(WorkunitState.VALIDATING, "mark_invalid")
        self.current_attempt.outcome = "invalid"
        return self._retry_or_error()

    def mark_timeout(self, now: float) -> bool:
        """IN_PROGRESS → UNSENT (retry) or ERROR. Returns True if retryable."""
        self._require(WorkunitState.IN_PROGRESS, "mark_timeout")
        self.current_attempt.finished_at = now
        self.current_attempt.outcome = "timeout"
        return self._retry_or_error()

    def mark_client_error(self, now: float) -> bool:
        """IN_PROGRESS → UNSENT (retry) or ERROR (client died/preempted)."""
        self._require(WorkunitState.IN_PROGRESS, "mark_client_error")
        self.current_attempt.finished_at = now
        self.current_attempt.outcome = "client_error"
        return self._retry_or_error()

    # -- queries ----------------------------------------------------------
    @property
    def current_attempt(self) -> Attempt:
        if not self.attempts:
            raise WorkunitError(f"{self.wu_id}: no attempts recorded")
        return self.attempts[-1]

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    def mark_cancelled(self, now: float) -> None:
        """UNSENT/IN_PROGRESS → CANCELLED (server-side abort)."""
        if self.state not in (WorkunitState.UNSENT, WorkunitState.IN_PROGRESS):
            raise WorkunitError(
                f"{self.wu_id}: cannot cancel from state {self.state.value}"
            )
        if self.state is WorkunitState.IN_PROGRESS:
            self.current_attempt.finished_at = now
            self.current_attempt.outcome = "cancelled"
        self.completed_at = now
        self._transition(WorkunitState.CANCELLED)

    @property
    def is_terminal(self) -> bool:
        return self.state in (
            WorkunitState.DONE,
            WorkunitState.ERROR,
            WorkunitState.CANCELLED,
        )

    def shard_file(self) -> str:
        """The data-shard file name (by convention the last input file)."""
        return self.input_files[-1]

    # -- internals ----------------------------------------------------------
    def _retry_or_error(self) -> bool:
        if len(self.attempts) < self.max_attempts:
            self._transition(WorkunitState.UNSENT)
            return True
        self._transition(WorkunitState.ERROR)
        return False

    def _require(self, expected: WorkunitState, op: str) -> None:
        if self.state is not expected:
            raise WorkunitError(
                f"{self.wu_id}: {op} requires state {expected.value}, "
                f"currently {self.state.value}"
            )
