"""Server file catalogue, web-server transfers, and sticky-file caching.

§III-B: files (model architecture, parameter copies, data shards, client
code) are distributed by the BOINC web server.  Two latency optimizations
from the paper are modelled:

* **compression** — BOINC can gzip a file server-side and decompress on
  the client; the transfer then charges for the compressed size;
* **sticky files** — a client keeps named files cached, and the scheduler
  prefers clients that already hold a workunit's shard file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, SchedulerError, SimulationError
from ..nn.serialization import compressed_size
from ..simulation.chaos import PartitionSchedule, TransferFaultPlan
from ..simulation.engine import Simulator
from ..simulation.network import NetworkLink
from ..simulation.tracing import Trace

__all__ = [
    "ServerFile",
    "FileCatalog",
    "StickyCache",
    "FileTransferModel",
    "WebServer",
    "TransferError",
]


@dataclass(frozen=True)
class TransferError:
    """Why a simulated transfer failed (handed to ``on_error`` callbacks)."""

    reason: str  # "failure" | "stall" | "partition"
    files: tuple[str, ...] = ()


@dataclass
class ServerFile:
    """A named file hosted by the BOINC web server.

    ``payload`` is the actual content (bytes or any object the executor
    understands); ``raw_size``/``compressed_size`` drive the transfer
    model; ``sticky`` marks it cacheable on clients; ``compressible``
    says whether the server serves the compressed representation.

    ``compressed_size`` may be :data:`ServerFile.AUTO`, in which case the
    catalogue measures the payload's real zlib size exactly once at
    registration (memoised by content, so republishing an identical
    payload never re-compresses).
    """

    AUTO = "auto"

    name: str
    payload: object
    raw_size: int
    compressed_size: int | str | None = None
    sticky: bool = False
    compressible: bool = True

    def __post_init__(self) -> None:
        if self.raw_size < 0:
            raise ConfigurationError(f"negative file size for {self.name!r}")
        if self.compressed_size is None:
            self.compressed_size = self.raw_size

    def wire_size(self, compression_enabled: bool) -> int:
        """Bytes actually sent over the network for one download."""
        if compression_enabled and self.compressible:
            if self.compressed_size == self.AUTO:
                raise SimulationError(
                    f"file {self.name!r} has an unresolved AUTO compressed "
                    "size; publish it through a FileCatalog first"
                )
            return int(self.compressed_size)
        return self.raw_size


class FileCatalog:
    """All files currently published by the server."""

    def __init__(self) -> None:
        self._files: dict[str, ServerFile] = {}

    def publish(self, file: ServerFile) -> None:
        """Add or replace a file (parameter files are republished every update).

        AUTO compressed sizes are resolved here, once per registration —
        the catalogue is the single place every served file passes
        through, so later ``wire_size`` queries are pure lookups.
        """
        if file.compressed_size == ServerFile.AUTO:
            file.compressed_size = self._measure_compressed(file)
        self._files[file.name] = file

    @staticmethod
    def _measure_compressed(file: ServerFile) -> int:
        """Real (memoised) zlib size of a measurable payload, capped at
        ``raw_size`` — an incompressible payload never costs more on the
        wire than its raw form (the server would skip compression)."""
        payload = file.payload
        if isinstance(payload, str):
            payload = payload.encode()
        if isinstance(payload, (bytes, np.ndarray)):
            return min(compressed_size(payload), file.raw_size)
        return file.raw_size

    def get(self, name: str) -> ServerFile:
        """Look up a published file; raises SchedulerError if absent."""
        try:
            return self._files[name]
        except KeyError:
            raise SchedulerError(f"file {name!r} not in catalog") from None

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def names(self) -> list[str]:
        """Sorted names of all published files."""
        return sorted(self._files)


class StickyCache:
    """Per-client cache of sticky file names (§III-B).

    Capacity is expressed in bytes; eviction is LRU.  The paper's shards
    are small (3.9 MB), so in practice everything fits, but the bound keeps
    the model honest for bigger workloads (ImageNet extrapolation).
    """

    def __init__(self, capacity_bytes: float = 8e9) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: dict[str, int] = {}  # name -> size (insertion order = LRU)
        self.hits = 0
        self.misses = 0
        # Publish version of the parameter file this client last fetched
        # (parameter files are not sticky, but the client's working copy
        # *is* a cache a delta codec can encode against).  Maintained by
        # the codec plane's FileTransferModel hook; None until the first
        # completed parameter download.
        self.param_version: int | None = None

    def has(self, name: str) -> bool:
        """Whether the named file is cached."""
        return name in self._entries

    def touch(self, name: str) -> None:
        """Refresh LRU recency of a cached file."""
        size = self._entries.pop(name)
        self._entries[name] = size

    def add(self, name: str, size: int) -> None:
        """Insert a file, evicting least-recently-used entries to fit."""
        if name in self._entries:
            self.touch(name)
            return
        while self._entries and self.used_bytes + size > self.capacity_bytes:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[name] = size

    @property
    def used_bytes(self) -> int:
        return sum(self._entries.values())

    def cached_names(self) -> set[str]:
        """Names currently cached (the sticky set sent to the scheduler)."""
        return set(self._entries)


class FileTransferModel:
    """Decides what one file download costs on the wire.

    The default model is the historical one: the file's published
    compressed (or raw) size.  A codec plane
    (:class:`repro.core.codec_plane.ParamCodecPlane`) hooks in here to
    price parameter files per client — e.g. the delta codec charges only
    the XOR chain between the client's cached version and the published
    one — and to observe completed downloads (version bookkeeping,
    ``net.decode`` tracing).  With no plane attached, behaviour is
    byte-identical to the pre-codec transfer path.
    """

    def __init__(self) -> None:
        self.codec_plane = None

    def wire_size(self, file: ServerFile, cache, compression_enabled: bool) -> int:
        """Bytes charged for one client's download of ``file``."""
        if self.codec_plane is not None:
            override = self.codec_plane.download_wire_size(file, cache)
            if override is not None:
                return override
        return file.wire_size(compression_enabled)

    def downloaded(self, file: ServerFile, cache, client_id: str, wu_id: str) -> None:
        """Hook: one file of a completed (non-faulted) transfer."""
        if self.codec_plane is not None:
            self.codec_plane.on_downloaded(file, cache, client_id, wu_id)


class WebServer:
    """Transfer engine: moves catalogue files over client links.

    Download/upload durations come from the client's
    :class:`~repro.simulation.network.NetworkLink`; completion is signalled
    via callback on the shared simulator — the *only* way to obtain a
    payload on the simulated path (use :meth:`peek_payloads` in tests).

    The chaos fabric hooks in here: ``faults`` injects per-transfer
    failures/stalls and ``partitions`` cuts clients off for timed windows.
    A failed transfer fires ``on_error(TransferError)`` instead of
    ``on_done``; callers without an ``on_error`` (legacy/setup paths) are
    never subjected to injected faults.
    """

    def __init__(
        self,
        sim: Simulator,
        catalog: FileCatalog,
        compression_enabled: bool = True,
        trace: Trace | None = None,
        faults: TransferFaultPlan | None = None,
        partitions: PartitionSchedule | None = None,
        transfer_model: FileTransferModel | None = None,
    ) -> None:
        self.sim = sim
        self.catalog = catalog
        self.compression_enabled = compression_enabled
        self.transfer_model = (
            transfer_model if transfer_model is not None else FileTransferModel()
        )
        self.trace = trace
        self.faults = faults if faults is not None else TransferFaultPlan()
        self.partitions = partitions if partitions is not None else PartitionSchedule()
        self.bytes_down = 0
        self.bytes_up = 0
        self.bytes_wasted = 0  # partial transfers that failed mid-flight
        self.transfers_failed = 0
        # Test-only escape hatch: peek_payloads bypasses the simulated
        # transfer path entirely, so production code must never reach it.
        # Tests that need it opt in explicitly.
        self.peek_enabled = False

    # -- fault model -------------------------------------------------------
    def _fault_delay(
        self,
        nominal_s: float,
        link: NetworkLink,
        client_id: str,
        rng: np.random.Generator | None,
    ) -> tuple[str | None, float]:
        """(failure reason or None, seconds until completion/detection)."""
        window = self.partitions.blocking(client_id, self.sim.now)
        if window is not None:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "net.partition",
                    client=client_id,
                    until=window.end_s,
                )
            return "partition", link.handshake_time()
        if self.faults.active and rng is not None:
            draw = float(rng.random())
            if draw < self.faults.failure_p:
                # The connection drops partway through: the client learns
                # after a deterministic fraction of the nominal time.
                return "failure", nominal_s * float(rng.uniform(0.05, 0.95))
            if draw < self.faults.failure_p + self.faults.stall_p:
                return "stall", self.faults.stall_timeout_s
        return None, nominal_s

    def _resolve(self, names: list[str]) -> dict[str, object]:
        return {name: self.catalog.get(name).payload for name in names}

    def peek_payloads(self, names: list[str]) -> dict[str, object]:
        """Test-only accessor: catalogue payloads with **no** simulated
        transfer, no caching side effects, and no fault injection.  The
        simulation-correct path is :meth:`download`'s callback.  Guarded
        behind ``peek_enabled`` (default off) so production paths cannot
        grow a dependency on the un-simulated shortcut."""
        if not self.peek_enabled:
            raise SimulationError(
                "peek_payloads is a test-only accessor; set "
                "web.peek_enabled = True in the test to use it"
            )
        return self._resolve(names)

    def download(
        self,
        names: list[str],
        link: NetworkLink,
        cache: StickyCache | None,
        on_done,
        rng: np.random.Generator | None = None,
        on_error=None,
        client_id: str = "",
        wu_id: str = "",
    ) -> None:
        """Fetch ``names`` for a client; fire ``on_done(payloads)`` when done.

        Cached sticky files cost nothing; the rest are transferred
        back-to-back over the link.  On an injected fault the transfer
        charges nothing to the cache, wastes the partial bytes, and fires
        ``on_error(TransferError)`` after the detection delay (when
        ``on_error`` is None the transfer is exempt from fault injection —
        setup paths must not silently lose files).
        """
        total_time = 0.0
        total_wire = 0
        cache_hits: list[str] = []
        cache_misses: list[tuple[str, int, bool]] = []  # name, wire, sticky
        transferred: list[ServerFile] = []
        for name in names:
            file = self.catalog.get(name)
            if cache is not None and file.sticky and cache.has(name):
                cache_hits.append(name)
                continue
            wire = self.transfer_model.wire_size(file, cache, self.compression_enabled)
            total_time += link.transfer_time(wire, rng, now=self.sim.now)
            total_wire += wire
            transferred.append(file)
            if cache is not None:
                cache_misses.append((name, wire, file.sticky))
        reason = None
        if on_error is not None:
            reason, total_time = self._fault_delay(total_time, link, client_id, rng)
        if reason is not None:
            self.transfers_failed += 1
            self.bytes_wasted += total_wire
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "web.xfer_fail",
                    direction="down",
                    reason=reason,
                    client=client_id,
                    wu=wu_id,
                    files=list(names),
                )
            error = TransferError(reason=reason, files=tuple(names))
            self.sim.schedule(
                total_time, lambda: on_error(error), label="web:download-fail"
            )
            return
        # Cache bookkeeping only on transfers that actually complete.
        for name in cache_hits:
            cache.touch(name)
            cache.hits += 1
        for name, wire, sticky in cache_misses:
            cache.misses += 1
            if sticky:
                cache.add(name, wire)
        for file in transferred:
            self.transfer_model.downloaded(file, cache, client_id, wu_id)
        self.bytes_down += total_wire
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "web.download",
                files=list(names),
                seconds=total_time,
                client=client_id,
                wu=wu_id,
            )
        payloads = self._resolve(names)
        self.sim.schedule(total_time, lambda: on_done(payloads), label="web:download")

    def upload(
        self,
        nbytes: int,
        link: NetworkLink,
        on_done,
        rng: np.random.Generator | None = None,
        on_error=None,
        client_id: str = "",
        wu_id: str = "",
    ) -> None:
        """Client → server transfer of a result file of ``nbytes``."""
        seconds = link.transfer_time(nbytes, rng, now=self.sim.now)
        reason = None
        if on_error is not None:
            reason, seconds = self._fault_delay(seconds, link, client_id, rng)
        if reason is not None:
            self.transfers_failed += 1
            self.bytes_wasted += nbytes
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "web.xfer_fail",
                    direction="up",
                    reason=reason,
                    client=client_id,
                    wu=wu_id,
                    nbytes=nbytes,
                )
            error = TransferError(reason=reason)
            self.sim.schedule(seconds, lambda: on_error(error), label="web:upload-fail")
            return
        self.bytes_up += nbytes
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "web.upload",
                nbytes=nbytes,
                seconds=seconds,
                client=client_id,
                wu=wu_id,
            )
        self.sim.schedule(seconds, on_done, label="web:upload")
