"""BOINC server composition: scheduler + web server + validator + assimilator.

Mirrors Fig. 1 of the paper: one server instance hosts the scheduler, the
web/file services, and the assimilation pipeline; clients only ever talk to
the server (no peer-to-peer, as §II-A notes is impractical for VC).
"""

from __future__ import annotations

from typing import Callable

from ..simulation.chaos import PartitionSchedule, TransferFaultPlan
from ..simulation.engine import Simulator
from ..simulation.tracing import Trace
from .assimilator import Assimilator
from .client import ClientDaemon
from .credit import CreditClaim, CreditLedger
from .files import FileCatalog, WebServer
from .scheduler import Scheduler, SchedulerConfig
from .validator import ParameterValidator
from .workunit import Workunit

__all__ = ["BoincServer"]


class BoincServer:
    """The server side of the volunteer-computing system."""

    def __init__(
        self,
        sim: Simulator,
        assimilator: Assimilator,
        validator: ParameterValidator,
        scheduler_config: SchedulerConfig | None = None,
        compression_enabled: bool = True,
        credit_ledger: CreditLedger | None = None,
        trace: Trace | None = None,
        transfer_faults: TransferFaultPlan | None = None,
        partitions: PartitionSchedule | None = None,
    ) -> None:
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.catalog = FileCatalog()
        self.web = WebServer(
            sim,
            self.catalog,
            compression_enabled,
            trace=self.trace,
            faults=transfer_faults,
            partitions=partitions,
        )
        self.scheduler = Scheduler(sim, scheduler_config, trace=self.trace)
        self.validator = validator
        self.assimilator = assimilator
        self.credit = credit_ledger if credit_ledger is not None else CreditLedger()
        self.clients: dict[str, ClientDaemon] = {}
        self.scheduler.on_timeout = self._notify_timeout
        # Invoked after every assimilation completes; the job runner uses it
        # to detect epoch boundaries.
        self.on_assimilated: Callable[[Workunit], None] | None = None

    @property
    def work_fetch(self) -> str:
        """The fleet's work-fetch protocol ("poke" | "ping")."""
        return self.scheduler.config.work_fetch

    # -- client management -------------------------------------------------
    def attach_client(self, client: ClientDaemon) -> None:
        """Register a client daemon and wire its result path through us."""
        self.clients[client.client_id] = client
        client._on_result_accepted = self._handle_accepted_result
        if self.work_fetch == "ping":
            # Boot ping: the client introduces itself once, then lives off
            # sleep hints and scheduler wake-ups — the server never
            # broadcasts to the fleet again.
            self.sim.schedule(
                0.0, client.poll_for_work, label=f"ping-boot:{client.client_id}"
            )

    def poke_clients(self) -> None:
        """Tell all live clients new work may be available.

        Ping mode: a no-op — the scheduler wakes exactly as many parked
        idle waiters as there are new units (O(work), not O(fleet)), so an
        idle 100k-client fleet sees no broadcast storm.
        """
        if self.work_fetch == "ping":
            return
        for client in self.clients.values():
            if client.alive:
                client.poll_for_work()

    def publish_workunits(self, workunits: list[Workunit]) -> None:
        """Add workunits to the scheduler and wake the fleet."""
        self.scheduler.add_workunits(workunits)
        self.poke_clients()

    # -- result path -----------------------------------------------------------
    def _handle_accepted_result(self, wu: Workunit, payload: object) -> None:
        host = wu.current_attempt.client_id
        verdict = self.validator.validate(payload, now=self.sim.now, wu_id=wu.wu_id)
        if not verdict.ok:
            self.trace.emit(
                self.sim.now, "server.invalid_result", wu=wu.wu_id, reason=verdict.reason
            )
            self.credit.deny(host, now=self.sim.now)
            self.trace.emit(self.sim.now, "credit.deny", wu=wu.wu_id, host=host)
            retried = self.scheduler.requeue_after_invalid(wu.wu_id)
            if retried:
                self.poke_clients()
            return
        self.trace.emit(self.sim.now, "server.result_valid", wu=wu.wu_id, host=host)
        self.credit.grant_single(
            CreditClaim(host_id=host, wu_id=wu.wu_id, claimed=wu.work_units),
            now=self.sim.now,
        )
        self.trace.emit(
            self.sim.now, "credit.grant", wu=wu.wu_id, host=host, amount=wu.work_units
        )
        wu.mark_valid(self.sim.now, result=None)  # payload flows to assimilator

        def assimilation_done() -> None:
            self.trace.emit(self.sim.now, "server.assimilated", wu=wu.wu_id, epoch=wu.epoch)
            if self.on_assimilated is not None:
                self.on_assimilated(wu)

        self.assimilator.assimilate(wu, payload, assimilation_done)

    def _notify_timeout(self, wu_id: str, client_id: str) -> None:
        client = self.clients.get(client_id)
        if client is not None and client.alive:
            client.abort_workunit(wu_id)
        # The reissued unit should be picked up promptly by someone else.
        self.poke_clients()
