"""BOINC server composition: scheduler + web server + validator + assimilator.

Mirrors Fig. 1 of the paper: one server instance hosts the scheduler, the
web/file services, and the assimilation pipeline; clients only ever talk to
the server (no peer-to-peer, as §II-A notes is impractical for VC).
"""

from __future__ import annotations

from typing import Callable

from ..simulation.chaos import PartitionSchedule, TransferFaultPlan
from ..simulation.engine import Simulator
from ..simulation.tracing import Trace
from .assimilator import Assimilator
from .client import ClientDaemon
from .credit import CreditClaim, CreditLedger
from .files import FileCatalog, WebServer
from .replication import QuorumAssimilator
from .scheduler import Scheduler, SchedulerConfig
from .validator import ParameterValidator
from .workunit import Workunit

__all__ = ["BoincServer"]


class BoincServer:
    """The server side of the volunteer-computing system."""

    def __init__(
        self,
        sim: Simulator,
        assimilator: Assimilator,
        validator: ParameterValidator,
        scheduler_config: SchedulerConfig | None = None,
        compression_enabled: bool = True,
        credit_ledger: CreditLedger | None = None,
        trace: Trace | None = None,
        transfer_faults: TransferFaultPlan | None = None,
        partitions: PartitionSchedule | None = None,
    ) -> None:
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.catalog = FileCatalog()
        self.web = WebServer(
            sim,
            self.catalog,
            compression_enabled,
            trace=self.trace,
            faults=transfer_faults,
            partitions=partitions,
        )
        self.scheduler = Scheduler(sim, scheduler_config, trace=self.trace)
        self.validator = validator
        self.assimilator = assimilator
        self.credit = credit_ledger if credit_ledger is not None else CreditLedger()
        self.clients: dict[str, ClientDaemon] = {}
        self.scheduler.on_timeout = self._notify_timeout
        # Invoked after every assimilation completes; the job runner uses it
        # to detect epoch boundaries.
        self.on_assimilated: Callable[[Workunit], None] | None = None
        # Byzantine defenses.  ``invalid_feedback`` routes every invalidated
        # result (validator reject or quorum loss) into the scheduler's
        # reliability EWMA and quarantine counter — off by default, so
        # historical runs never see scheduling perturbed by rejects.
        self.invalid_feedback = False
        # Quorum-deferred credit: claims of valid replicas are stashed here
        # (physical wu_id -> claim) until the replica group decides, then
        # the winning clique is granted the *median* claim and losers are
        # denied — BOINC's claim-inflation defense.
        self._quorum_credit = False
        self._quorum_claims: dict[str, CreditClaim] = {}
        self._quorum_grants: dict[str, float] = {}

    def enable_quorum_credit(self, quorum: QuorumAssimilator) -> None:
        """Defer credit decisions to the replica-quorum outcome."""
        self._quorum_credit = True
        quorum.on_quorum = self._on_quorum_decided
        quorum.on_late = self._on_late_replica
        quorum.on_failed = self._on_quorum_failed

    @property
    def work_fetch(self) -> str:
        """The fleet's work-fetch protocol ("poke" | "ping")."""
        return self.scheduler.config.work_fetch

    # -- client management -------------------------------------------------
    def attach_client(self, client: ClientDaemon) -> None:
        """Register a client daemon and wire its result path through us."""
        self.clients[client.client_id] = client
        client._on_result_accepted = self._handle_accepted_result
        if self.work_fetch == "ping":
            # Boot ping: the client introduces itself once, then lives off
            # sleep hints and scheduler wake-ups — the server never
            # broadcasts to the fleet again.
            self.sim.schedule(
                0.0, client.poll_for_work, label=f"ping-boot:{client.client_id}"
            )

    def poke_clients(self) -> None:
        """Tell all live clients new work may be available.

        Ping mode: a no-op — the scheduler wakes exactly as many parked
        idle waiters as there are new units (O(work), not O(fleet)), so an
        idle 100k-client fleet sees no broadcast storm.
        """
        if self.work_fetch == "ping":
            return
        for client in self.clients.values():
            if client.alive:
                client.poll_for_work()

    def publish_workunits(self, workunits: list[Workunit]) -> None:
        """Add workunits to the scheduler and wake the fleet."""
        self.scheduler.add_workunits(workunits)
        self.poke_clients()

    # -- result path -----------------------------------------------------------
    def _handle_accepted_result(self, wu: Workunit, payload: object) -> None:
        host = wu.current_attempt.client_id
        verdict = self.validator.validate(payload, now=self.sim.now, wu_id=wu.wu_id)
        if not verdict.ok:
            self.trace.emit(
                self.sim.now,
                "server.result_invalid",
                wu=wu.wu_id,
                reason=verdict.reason,
                code=verdict.code,
            )
            self.credit.deny(host, now=self.sim.now)
            self.trace.emit(
                self.sim.now, "credit.deny", wu=wu.wu_id, host=host, reason="invalid"
            )
            self._record_invalid(host)
            retried = self.scheduler.requeue_after_invalid(wu.wu_id)
            if retried:
                self.poke_clients()
            return
        self.trace.emit(self.sim.now, "server.result_valid", wu=wu.wu_id, host=host)
        claimed = getattr(payload, "claimed_credit", None)
        claim = CreditClaim(
            host_id=host,
            wu_id=wu.wu_id,
            claimed=wu.work_units if claimed is None else float(claimed),
        )
        if self._quorum_credit:
            # Credit waits for the replica group's verdict: winners share
            # the median claim, losers are denied (see enable_quorum_credit).
            self._quorum_claims[wu.wu_id] = claim
        else:
            self.credit.grant_single(claim, now=self.sim.now)
            self.trace.emit(
                self.sim.now,
                "credit.grant",
                wu=wu.wu_id,
                host=host,
                amount=claim.claimed,
            )
        wu.mark_valid(self.sim.now, result=None)  # payload flows to assimilator

        def assimilation_done() -> None:
            self.trace.emit(self.sim.now, "server.assimilated", wu=wu.wu_id, epoch=wu.epoch)
            if self.on_assimilated is not None:
                self.on_assimilated(wu)

        self.assimilator.assimilate(wu, payload, assimilation_done)

    # -- quorum-deferred credit ------------------------------------------------
    def _on_quorum_decided(
        self, key: str, winners: list[Workunit], losers: list[Workunit]
    ) -> None:
        claims = [
            self._quorum_claims.pop(wu.wu_id)
            for wu in winners
            if wu.wu_id in self._quorum_claims
        ]
        if claims:
            grant = self.credit.grant_quorum(claims, now=self.sim.now)
            self._quorum_grants[key] = grant
            for claim in claims:
                self.trace.emit(
                    self.sim.now,
                    "credit.grant",
                    wu=claim.wu_id,
                    host=claim.host_id,
                    amount=grant,
                )
        for wu in losers:
            claim = self._quorum_claims.pop(wu.wu_id, None)
            loser_host = (
                claim.host_id if claim is not None else wu.current_attempt.client_id
            )
            self.credit.deny(loser_host, now=self.sim.now)
            self.trace.emit(
                self.sim.now,
                "credit.deny",
                wu=wu.wu_id,
                host=loser_host,
                reason="quorum_loss",
            )
            self._record_invalid(loser_host)

    def _on_late_replica(self, key: str, wu: Workunit, agrees: bool) -> None:
        claim = self._quorum_claims.pop(wu.wu_id, None)
        if claim is None:
            return
        grant = self._quorum_grants.get(key)
        if agrees and grant is not None:
            # BOINC grants a straggler that matches the canonical result
            # the already-decided quorum amount, not its own claim.
            self.credit.grant_single(
                CreditClaim(host_id=claim.host_id, wu_id=claim.wu_id, claimed=grant),
                now=self.sim.now,
            )
            self.trace.emit(
                self.sim.now,
                "credit.grant",
                wu=claim.wu_id,
                host=claim.host_id,
                amount=grant,
            )
            return
        self.credit.deny(claim.host_id, now=self.sim.now)
        self.trace.emit(
            self.sim.now,
            "credit.deny",
            wu=claim.wu_id,
            host=claim.host_id,
            reason="quorum_loss",
        )
        self._record_invalid(claim.host_id)

    def _on_quorum_failed(self, key: str, workunits: list[Workunit]) -> None:
        for wu in workunits:
            claim = self._quorum_claims.pop(wu.wu_id, None)
            if claim is None:
                continue
            self.credit.deny(claim.host_id, now=self.sim.now)
            self.trace.emit(
                self.sim.now,
                "credit.deny",
                wu=claim.wu_id,
                host=claim.host_id,
                reason="quorum_failed",
            )
            self._record_invalid(claim.host_id)

    def _record_invalid(self, host: str) -> None:
        """Feed one invalidated result into the reliability/quarantine loop."""
        if not self.invalid_feedback:
            return
        if self.scheduler.record_invalid_result(host):
            record = self.scheduler.client(host)
            self.trace.emit(
                self.sim.now,
                "credit.quarantine",
                host=host,
                invalids=record.invalid_results,
            )

    def _notify_timeout(self, wu_id: str, client_id: str) -> None:
        client = self.clients.get(client_id)
        if client is not None and client.alive:
            client.abort_workunit(wu_id)
        # The reissued unit should be picked up promptly by someone else.
        self.poke_clients()
