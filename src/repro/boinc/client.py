"""Client daemon: the volunteer node's side of the protocol (§II-C, §III).

Each client owns a processor-sharing compute resource, a WAN link, and a
sticky-file cache.  Its life is a loop:

1. when execution slots are free, request work from the scheduler;
2. for each granted workunit, download the input files (model spec,
   current server parameters, data shard) from the web server;
3. execute the training subtask on the compute resource (real NumPy
   training, simulated duration);
4. upload the resulting parameter file;
5. go to 1.

Preemption (:meth:`ClientDaemon.terminate`) kills the machine mid-flight;
recovery is entirely the scheduler's timeout/reissue machinery — the
client does not (and on a reclaimed cloud instance, cannot) clean up.

**Persistent transfers** (BOINC middleware behaviour, Anderson 2018): a
failed or stalled download/upload is retried with capped exponential
backoff plus deterministic jitter, up to a retry budget.  The scheduler's
deadline machinery is *not* suspended during retries, so a permanently
partitioned client times out honestly and its workunit is reissued
elsewhere; the client's own retry loop notices the abort and stops.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import SimulationError
from ..simulation.engine import Simulator
from ..simulation.network import NetworkLink
from ..simulation.resources import ComputeResource, ComputeTask, InstanceSpec
from ..simulation.tracing import Trace
from .files import StickyCache, WebServer
from .scheduler import Scheduler
from .workunit import Workunit

__all__ = ["TaskExecutor", "ClientDaemon"]

# The application hook: given the workunit and its downloaded input
# payloads, run the actual training and return (result_payload, nbytes).
TaskExecutor = Callable[[Workunit, dict[str, object]], tuple[object, int]]

# Persistent-transfer policy (BOINC's project backoff is minutes-scale;
# ours is compressed to match the 5-minute subtask deadline so a transient
# fault retries several times before the scheduler reclaims the unit).
TRANSFER_RETRY_BASE_S = 5.0
TRANSFER_RETRY_CAP_S = 300.0
MAX_TRANSFER_RETRIES = 10


class ClientDaemon:
    """One volunteer/preemptible client instance."""

    def __init__(
        self,
        client_id: str,
        sim: Simulator,
        spec: InstanceSpec,
        scheduler: Scheduler,
        web: WebServer,
        executor: TaskExecutor,
        max_concurrent: int,
        link: NetworkLink | None = None,
        rng: np.random.Generator | None = None,
        cache_capacity_bytes: float = 8e9,
        trace: Trace | None = None,
    ) -> None:
        if max_concurrent <= 0:
            raise SimulationError("max_concurrent (Tn) must be positive")
        self.client_id = client_id
        self.sim = sim
        self.spec = spec
        self.scheduler = scheduler
        self.web = web
        self.executor = executor
        self.max_concurrent = max_concurrent
        self.link = link if link is not None else spec.default_link()
        self.rng = rng
        self.cache = StickyCache(cache_capacity_bytes)
        self.trace = trace
        self.resource = ComputeResource(sim, spec, name=f"cpu:{client_id}")
        self.alive = True
        self._in_flight: dict[str, ComputeTask | None] = {}  # wu_id -> compute task
        self._backoff_retry = None  # pending retry event during backoff
        self._ping_timer = None  # pending self-scheduled ping (ping mode)
        self._heartbeats: dict[str, object] = {}  # wu_id -> pending heartbeat event
        self.subtasks_completed = 0
        self.subtasks_aborted = 0
        self.transfer_retries = 0
        self.transfers_abandoned = 0
        scheduler.register_client(client_id)

    # -- work acquisition ---------------------------------------------------
    @property
    def free_slots(self) -> int:
        """Execution slots not currently holding a subtask (Tn − in flight)."""
        return self.max_concurrent - len(self._in_flight)

    def poll_for_work(self) -> None:
        """Ask the scheduler for work up to the free slot count.

        In "poke" mode this is the legacy request path (the server
        broadcasts pokes); in "ping" mode it is one ping of the ping +
        server-suggested-sleep protocol: an empty-handed ping parks the
        client until the hint expires or the scheduler wakes it early.
        """
        if not self.alive or self.free_slots <= 0:
            return
        if self.scheduler.config.work_fetch == "ping":
            self._ping()
            return
        granted = self.scheduler.request_work(
            self.client_id, self.cache.cached_names(), self.free_slots
        )
        if not granted:
            self._schedule_backoff_retry()
        for wu in granted:
            self._in_flight[wu.wu_id] = None  # slot reserved; no compute yet
            self._start_download(wu)

    def _ping(self) -> None:
        self._cancel_ping_timer()
        if not self.alive or self.free_slots <= 0:
            return
        granted, hint = self.scheduler.ping(
            self.client_id,
            self.cache.cached_names(),
            self.free_slots,
            wake=self._on_wake,
        )
        for wu in granted:
            self._in_flight[wu.wu_id] = None  # slot reserved; no compute yet
            self._start_download(wu)
        if not granted and hint > 0:
            self._ping_timer = self.sim.schedule(
                hint, self._ping, label=f"{self.client_id}:ping"
            )

    def _on_wake(self) -> None:
        """Scheduler roused us: new work arrived while we were parked."""
        if not self.alive or self.free_slots <= 0:
            return
        self._ping()

    def _cancel_ping_timer(self) -> None:
        if self._ping_timer is not None:
            self._ping_timer.cancel()
            self._ping_timer = None

    def _schedule_backoff_retry(self) -> None:
        """If work exists but we are in failure backoff, retry at expiry.

        Without this, a fleet where every client is backing off would never
        wake up again (no future event would trigger a poll).
        """
        if self.scheduler.unsent_count() == 0:
            return
        record = self.scheduler.client(self.client_id)
        if record.backoff_until <= self.sim.now:
            return
        if self._backoff_retry is not None and not self._backoff_retry.cancelled:
            return
        delay = record.backoff_until - self.sim.now + 1e-6
        self._backoff_retry = self.sim.schedule(
            delay, self._retry_after_backoff, label=f"{self.client_id}:backoff-retry"
        )

    def _retry_after_backoff(self) -> None:
        self._backoff_retry = None
        self.poll_for_work()

    # -- persistent transfers (download side) -------------------------------
    def _transfer_backoff(self, retry: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        delay = min(TRANSFER_RETRY_BASE_S * 2.0**retry, TRANSFER_RETRY_CAP_S)
        if self.rng is not None:
            delay *= 1.0 + 0.25 * float(self.rng.random())
        return delay

    def _start_download(self, wu: Workunit, retry: int = 0) -> None:
        def on_downloaded(payloads: dict[str, object]) -> None:
            if not self.alive or wu.wu_id not in self._in_flight:
                return  # preempted or aborted while downloading
            self._start_compute(wu, payloads)

        def on_error(error) -> None:
            if not self.alive or wu.wu_id not in self._in_flight:
                return  # deadline fired (or preemption) during the transfer
            if retry >= MAX_TRANSFER_RETRIES:
                # Give up: free the slot; the scheduler deadline reclaims
                # and reissues the unit — the client never fakes a result.
                self.transfers_abandoned += 1
                self._in_flight.pop(wu.wu_id, None)
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        "net.gave_up",
                        client=self.client_id,
                        wu=wu.wu_id,
                        phase="download",
                    )
                return
            delay = self._transfer_backoff(retry)
            self.transfer_retries += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "net.retry",
                    client=self.client_id,
                    wu=wu.wu_id,
                    phase="download",
                    attempt=retry + 1,
                    reason=error.reason,
                    backoff_s=delay,
                )
            self.sim.schedule(
                delay,
                lambda: self._start_download(wu, retry + 1),
                label=f"{self.client_id}:dl-retry",
            )

        self.web.download(
            list(wu.input_files),
            self.link,
            self.cache,
            on_downloaded,
            self.rng,
            on_error=on_error,
            client_id=self.client_id,
            wu_id=wu.wu_id,
        )

    def _start_compute(self, wu: Workunit, payloads: dict[str, object]) -> None:
        def on_computed() -> None:
            self._in_flight.pop(wu.wu_id, None)
            self._stop_heartbeat(wu.wu_id)
            if not self.alive:
                return
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "client.train_done", wu=wu.wu_id, client=self.client_id
                )
            result, nbytes = self.executor(wu, payloads)
            self._start_upload(wu, result, nbytes)

        task = self.resource.submit(wu.work_units, on_computed, label=wu.wu_id)
        self._in_flight[wu.wu_id] = task
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "client.train_start", wu=wu.wu_id, client=self.client_id
            )
        if self.on_train_start is not None:
            # Deferred-execution runs (core.steps) open their batching
            # window here: the runner pre-draws the step's RNG and queues
            # the compute so it can fuse with every other subtask training
            # concurrently over this simulated interval.
            self.on_train_start(wu, payloads)
        if self.scheduler.config.heartbeats_enabled:
            self._schedule_heartbeat(wu.wu_id)

    # -- trickle heartbeats (§II-C-style progress reports) -------------------
    def _schedule_heartbeat(self, wu_id: str) -> None:
        interval = self.scheduler.config.heartbeat_interval_s
        self._heartbeats[wu_id] = self.sim.schedule(
            interval, lambda: self._send_heartbeat(wu_id), label=f"hb:{wu_id}"
        )

    def _send_heartbeat(self, wu_id: str) -> None:
        self._heartbeats.pop(wu_id, None)
        if not self.alive or wu_id not in self._in_flight:
            return
        still_valid = self.scheduler.report_heartbeat(wu_id, self.client_id)
        if still_valid:
            self._schedule_heartbeat(wu_id)

    def _stop_heartbeat(self, wu_id: str) -> None:
        handle = self._heartbeats.pop(wu_id, None)
        if handle is not None:
            handle.cancel()

    def _start_upload(
        self, wu: Workunit, result: object, nbytes: int, retry: int = 0
    ) -> None:
        def on_uploaded() -> None:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "client.uploaded", wu=wu.wu_id, client=self.client_id
                )
            self.subtasks_completed += 1
            accepted = self.scheduler.report_result(wu.wu_id, self.client_id)
            if accepted:
                if self.trace is not None:
                    # Subtask turnaround (Fig. 2's unit of work): assignment
                    # to accepted result, including transfers and queueing.
                    self.trace.emit(
                        self.sim.now,
                        "client.turnaround",
                        wu=wu.wu_id,
                        client=self.client_id,
                        seconds=self.sim.now - wu.current_attempt.sent_at,
                    )
                # Deferred-execution payloads (core.steps.DeferredUpdate)
                # materialize here, at the last moment before any server
                # component reads inside them.  Upload retries reuse the
                # same payload object, so the lazy handle survives them.
                payload = result
                resolve = getattr(payload, "resolve_update", None)
                if resolve is not None:
                    payload = resolve()
                self._on_result_accepted(wu, payload)
            self.poll_for_work()

        def on_error(error) -> None:
            # The compute slot is already free (result computed); the client
            # keeps the result file and retries the upload — a late success
            # is discarded server-side if the unit was reissued meanwhile.
            if not self.alive:
                return
            if retry >= MAX_TRANSFER_RETRIES:
                self.transfers_abandoned += 1
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now,
                        "net.gave_up",
                        client=self.client_id,
                        wu=wu.wu_id,
                        phase="upload",
                    )
                self.poll_for_work()
                return
            delay = self._transfer_backoff(retry)
            self.transfer_retries += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "net.retry",
                    client=self.client_id,
                    wu=wu.wu_id,
                    phase="upload",
                    attempt=retry + 1,
                    reason=error.reason,
                    backoff_s=delay,
                )
            self.sim.schedule(
                delay,
                lambda: self._start_upload(wu, result, nbytes, retry + 1),
                label=f"{self.client_id}:ul-retry",
            )

        self.web.upload(
            nbytes,
            self.link,
            on_uploaded,
            self.rng,
            on_error=on_error,
            client_id=self.client_id,
            wu_id=wu.wu_id,
        )

    # Server wiring: BoincServer overrides this to route into validation.
    _on_result_accepted: Callable[[Workunit, object], None] = lambda self, wu, r: None

    # Optional hook fired when a subtask's compute begins (see
    # _start_compute); the deferred-execution runner uses it to pre-submit
    # the step to its dispatcher.  None keeps the legacy path untouched.
    on_train_start: "Callable[[Workunit, dict[str, object]], None] | None" = None

    # -- abort / preemption ----------------------------------------------------
    def abort_workunit(self, wu_id: str) -> None:
        """Scheduler timed the unit out elsewhere — stop wasting cycles."""
        task = self._in_flight.pop(wu_id, None)
        self._stop_heartbeat(wu_id)
        if isinstance(task, ComputeTask):
            self.resource.cancel(task)
        self.subtasks_aborted += 1
        if self.alive and self.scheduler.config.work_fetch == "ping":
            # The freed slot must re-enter the ping loop itself: there is
            # no poke broadcast to rescue an idle slot in ping mode.
            self.poll_for_work()

    def terminate(self) -> None:
        """Instance reclaimed (preemption) or crashed: drop everything."""
        if not self.alive:
            return
        self.alive = False
        self.resource.terminate()
        self._in_flight.clear()
        for wu_id in list(self._heartbeats):
            self._stop_heartbeat(wu_id)
        self._cancel_ping_timer()
        # Leave the idle-waiter list before the failure report requeues our
        # units — a dead client must not swallow a wake-up.
        self.scheduler.cancel_waiter(self.client_id)
        self.scheduler.report_client_failure(self.client_id)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "client.terminated", client=self.client_id)
