"""Assimilator interface (BOINC's assimilator service, §II-C / §III-A).

In the paper, the parameter server is "built on top of BOINC's configurable
assimilator process": when a valid result arrives, BOINC invokes the
assimilator, which applies the VC-ASGD update.  The BOINC layer only knows
this protocol; the concrete implementation (the multi-parameter-server
pool) lives in :mod:`repro.core.param_server`.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .workunit import Workunit

__all__ = ["Assimilator", "CallbackAssimilator"]


class Assimilator(Protocol):
    """Consumes validated results."""

    def assimilate(
        self, workunit: Workunit, payload: object, on_done: Callable[[], None]
    ) -> None:
        """Process ``payload`` for ``workunit``; call ``on_done`` when the
        server-side processing (parameter merge + validation pass) ends."""
        ...


class CallbackAssimilator:
    """Trivial assimilator wrapping a plain function — used by tests and by
    applications that do not need the parameter-server machinery."""

    def __init__(self, fn: Callable[[Workunit, object], None]) -> None:
        self.fn = fn
        self.count = 0

    def assimilate(
        self, workunit: Workunit, payload: object, on_done: Callable[[], None]
    ) -> None:
        """Invoke the wrapped function and complete immediately."""
        self.fn(workunit, payload)
        self.count += 1
        on_done()
