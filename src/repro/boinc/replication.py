"""Workunit replication with quorum validation (§II-C).

BOINC "allows a workunit to be replicated on multiple clients to create
computational redundancy, which can help with fault tolerance and
verification of results."  In BOINC terms a workunit has
``target_nresults`` replicas and a ``min_quorum``; the validator declares a
*canonical result* once enough replicas agree.

Training results are floating-point parameter vectors, so agreement is
fuzzy: two results agree when their relative L2 distance is below a
tolerance (deterministic replicas agree exactly; a corrupted or malicious
replica does not).  The coordinator sits between the BOINC server and the
real assimilator:

* the work generator mints ``replicas`` physical workunits per logical
  subtask (ids suffixed ``#r<k>``);
* each validated replica result lands here instead of the parameter
  server;
* when ``min_quorum`` mutually-agreeing results exist, ONE canonical
  result is forwarded to the inner assimilator; later replicas of the
  same logical unit are discarded (BOINC cancels or ignores them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from ..simulation.engine import Simulator
from ..simulation.tracing import Trace
from .assimilator import Assimilator
from .workunit import Workunit

__all__ = ["logical_id", "replica_id", "QuorumConfig", "QuorumAssimilator"]

_SEPARATOR = "#r"


def replica_id(wu_id: str, replica: int) -> str:
    """Physical workunit id of replica ``replica`` of logical unit ``wu_id``."""
    return f"{wu_id}{_SEPARATOR}{replica}"


def logical_id(physical_id: str) -> str:
    """Strip the replica suffix (identity for unreplicated ids)."""
    base, sep, _ = physical_id.rpartition(_SEPARATOR)
    return base if sep else physical_id


@dataclass(frozen=True)
class QuorumConfig:
    """Replication policy: how many copies, how many must agree."""

    replicas: int = 2
    min_quorum: int = 2
    rtol: float = 1e-9  # relative L2 tolerance for "agreement"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        if not 1 <= self.min_quorum <= self.replicas:
            raise ConfigurationError(
                f"min_quorum must be in [1, replicas], got {self.min_quorum}"
            )
        if self.rtol < 0:
            raise ConfigurationError("rtol must be non-negative")


def _agreement_vector(payload: object) -> np.ndarray:
    """The vector replicas must agree on.

    Structured client updates (anything exposing ``params``, e.g.
    :class:`repro.core.rules.ClientUpdate`) are compared by their parameter
    copy — deterministic replicas produce identical weights *and*
    gradients, and the weights alone already expose corruption.
    """
    return np.asarray(getattr(payload, "params", payload))


@dataclass
class _LogicalUnit:
    """Collected replica results for one logical subtask."""

    results: list[tuple[Workunit, object]] = field(default_factory=list)
    decided: bool = False


class QuorumAssimilator:
    """Assimilator wrapper enforcing replica quorum before assimilation."""

    def __init__(
        self,
        inner: Assimilator,
        config: QuorumConfig,
        trace: Trace | None = None,
        sim: Simulator | None = None,
    ) -> None:
        self.inner = inner
        self.config = config
        self.trace = trace
        self.sim = sim
        self._units: dict[str, _LogicalUnit] = {}
        self.quorums_reached = 0
        self.disagreements = 0
        self.discarded_extras = 0
        # Hook: called with the logical id when a quorum is reached, so the
        # server can cancel the still-outstanding sibling replicas (BOINC
        # aborts redundant results once a canonical one exists).
        self.on_decided: Callable[[str], None] | None = None

    # -- Assimilator protocol ------------------------------------------------
    def assimilate(
        self, workunit: Workunit, payload: object, on_done: Callable[[], None]
    ) -> None:
        """Collect one replica result; forward the canonical one on quorum."""
        key = logical_id(workunit.wu_id)
        unit = self._units.setdefault(key, _LogicalUnit())
        if unit.decided:
            # Canonical result already chosen; BOINC ignores the straggler.
            self.discarded_extras += 1
            on_done()
            return
        unit.results.append((workunit, payload))
        group = self._largest_agreeing_group(unit)
        if len(group) >= self.config.min_quorum:
            unit.decided = True
            self.quorums_reached += 1
            canonical_wu, canonical_payload = group[0]
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now if self.sim is not None else 0.0,
                    "quorum.reached",
                    logical=key,
                    canonical=canonical_wu.wu_id,
                    replicas_seen=len(unit.results),
                )
            self.inner.assimilate(canonical_wu, canonical_payload, on_done)
            if self.on_decided is not None:
                self.on_decided(key)
            return
        if len(unit.results) > len(group) and len(unit.results) >= 2:
            self.disagreements += 1
        on_done()

    # -- agreement ----------------------------------------------------------
    def _agrees(self, a: object, b: object) -> bool:
        vec_a, vec_b = _agreement_vector(a), _agreement_vector(b)
        if vec_a.shape != vec_b.shape:
            return False
        scale = max(float(np.linalg.norm(vec_a)), float(np.linalg.norm(vec_b)), 1e-30)
        return float(np.linalg.norm(vec_a - vec_b)) <= self.config.rtol * scale

    def _largest_agreeing_group(
        self, unit: _LogicalUnit
    ) -> list[tuple[Workunit, object]]:
        """Largest clique of mutually agreeing results (greedy by anchor:
        agreement is near-transitive at tight tolerances)."""
        best: list[tuple[Workunit, object]] = []
        for i, (wu_i, payload_i) in enumerate(unit.results):
            group = [
                (wu_j, payload_j)
                for wu_j, payload_j in unit.results
                if self._agrees(payload_i, payload_j)
            ]
            if len(group) > len(best):
                best = group
        return best

    # -- introspection ----------------------------------------------------------
    def pending_units(self) -> int:
        """Logical units still waiting for quorum."""
        return sum(1 for u in self._units.values() if not u.decided)

    def decided_units(self) -> int:
        """Logical units whose canonical result was chosen."""
        return sum(1 for u in self._units.values() if u.decided)
