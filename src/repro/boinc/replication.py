"""Workunit replication with quorum validation (§II-C).

BOINC "allows a workunit to be replicated on multiple clients to create
computational redundancy, which can help with fault tolerance and
verification of results."  In BOINC terms a workunit has
``target_nresults`` replicas and a ``min_quorum``; the validator declares a
*canonical result* once enough replicas agree.

Training results are floating-point parameter vectors, so agreement is
fuzzy: two results agree when their relative L2 distance is below a
tolerance (deterministic replicas agree exactly; a corrupted or malicious
replica does not).  The coordinator sits between the BOINC server and the
real assimilator:

* the work generator mints ``replicas`` physical workunits per logical
  subtask (ids suffixed ``#r<k>``);
* each validated replica result lands here instead of the parameter
  server;
* when ``min_quorum`` mutually-agreeing results exist, ONE canonical
  result is forwarded to the inner assimilator; later replicas of the
  same logical unit are discarded (BOINC cancels or ignores them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from ..simulation.engine import Simulator
from ..simulation.tracing import Trace
from .assimilator import Assimilator
from .workunit import Workunit

__all__ = ["logical_id", "replica_id", "QuorumConfig", "QuorumAssimilator"]

_SEPARATOR = "#r"


def replica_id(wu_id: str, replica: int) -> str:
    """Physical workunit id of replica ``replica`` of logical unit ``wu_id``."""
    return f"{wu_id}{_SEPARATOR}{replica}"


def logical_id(physical_id: str) -> str:
    """Strip the replica suffix (identity for unreplicated ids)."""
    base, sep, _ = physical_id.rpartition(_SEPARATOR)
    return base if sep else physical_id


@dataclass(frozen=True)
class QuorumConfig:
    """Replication policy: how many copies, how many must agree.

    ``collusion_aware`` switches canonical selection from raw clique size
    to a per-host reliability weighting (see
    :meth:`QuorumAssimilator._collusion_decision`): a cartel of hosts with
    a history of invalidated results cannot out-vote honest replicas by
    submitting bit-identical wrong answers.  ``trust_threshold`` is the
    mean-reliability floor for the adaptive-replication escape hatch —
    when no clique reaches ``min_quorum``, a clique of sufficiently
    trusted hosts that outweighs every competitor is accepted anyway
    (BOINC's "adaptive replication" trusts reliable hosts with less
    redundancy).
    """

    replicas: int = 2
    min_quorum: int = 2
    rtol: float = 1e-9  # relative L2 tolerance for "agreement"
    collusion_aware: bool = False
    trust_threshold: float = 0.9

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        if not 1 <= self.min_quorum <= self.replicas:
            raise ConfigurationError(
                f"min_quorum must be in [1, replicas], got {self.min_quorum}"
            )
        if self.rtol < 0:
            raise ConfigurationError("rtol must be non-negative")
        if not 0.0 < self.trust_threshold <= 1.0:
            raise ConfigurationError("trust_threshold must be in (0, 1]")


def _agreement_vector(payload: object) -> np.ndarray:
    """The vector replicas must agree on.

    Structured client updates (anything exposing ``params``, e.g.
    :class:`repro.core.rules.ClientUpdate`) are compared by their parameter
    copy — deterministic replicas produce identical weights *and*
    gradients, and the weights alone already expose corruption.
    """
    return np.asarray(getattr(payload, "params", payload))


@dataclass
class _LogicalUnit:
    """Collected replica results for one logical subtask.

    ``canonical`` retains the winning (workunit, payload) pair after the
    decision, so late replicas can be validated against it (BOINC grants a
    straggler credit iff it matches the canonical result).  It stays None
    for units whose quorum failed.
    """

    results: list[tuple[Workunit, object]] = field(default_factory=list)
    decided: bool = False
    failed: bool = False
    canonical: tuple[Workunit, object] | None = None


class QuorumAssimilator:
    """Assimilator wrapper enforcing replica quorum before assimilation."""

    def __init__(
        self,
        inner: Assimilator,
        config: QuorumConfig,
        trace: Trace | None = None,
        sim: Simulator | None = None,
    ) -> None:
        self.inner = inner
        self.config = config
        self.trace = trace
        self.sim = sim
        self._units: dict[str, _LogicalUnit] = {}
        self.quorums_reached = 0
        self.quorums_failed = 0
        self.disagreements = 0
        self.discarded_extras = 0
        # Hook: called with the logical id when a quorum is reached, so the
        # server can cancel the still-outstanding sibling replicas (BOINC
        # aborts redundant results once a canonical one exists).
        self.on_decided: Callable[[str], None] | None = None
        # Credit hooks (all optional; the server wires them when credit is
        # deferred to the quorum decision):
        # on_quorum(key, winners, losers) — decision made; winners are the
        #   canonical clique's workunits, losers the arrived disagreeing ones.
        # on_late(key, workunit, agrees) — replica arrived after the
        #   decision; ``agrees`` compares it against the canonical payload.
        # on_failed(key, workunits) — all replicas arrived, no quorum.
        self.on_quorum: Callable[[str, list[Workunit], list[Workunit]], None] | None = (
            None
        )
        self.on_late: Callable[[str, Workunit, bool], None] | None = None
        self.on_failed: Callable[[str, list[Workunit]], None] | None = None
        # Per-host reliability lookup for collusion-aware selection (wired
        # to the scheduler's reliability EWMA; None = every host weighs 1).
        self.reliability_fn: Callable[[str], float] | None = None

    # -- Assimilator protocol ------------------------------------------------
    def assimilate(
        self, workunit: Workunit, payload: object, on_done: Callable[[], None]
    ) -> None:
        """Collect one replica result; forward the canonical one on quorum."""
        key = logical_id(workunit.wu_id)
        unit = self._units.setdefault(key, _LogicalUnit())
        if unit.decided:
            # Canonical result already chosen; BOINC ignores the straggler.
            self.discarded_extras += 1
            if self.on_late is not None:
                agrees = unit.canonical is not None and self._agrees(
                    unit.canonical[1], payload
                )
                self.on_late(key, workunit, agrees)
            on_done()
            return
        unit.results.append((workunit, payload))
        largest = self._largest_agreeing_group(unit)
        if self.config.collusion_aware:
            group = self._collusion_decision(unit)
        else:
            group = largest if len(largest) >= self.config.min_quorum else None
        if group is not None:
            unit.decided = True
            unit.canonical = group[0]
            self.quorums_reached += 1
            canonical_wu, canonical_payload = group[0]
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now if self.sim is not None else 0.0,
                    "quorum.reached",
                    logical=key,
                    canonical=canonical_wu.wu_id,
                    replicas_seen=len(unit.results),
                )
            if self.on_quorum is not None:
                winner_ids = {wu.wu_id for wu, _ in group}
                losers = [wu for wu, _ in unit.results if wu.wu_id not in winner_ids]
                self.on_quorum(key, [wu for wu, _ in group], losers)
            self.inner.assimilate(canonical_wu, canonical_payload, on_done)
            if self.on_decided is not None:
                self.on_decided(key)
            return
        if (
            self.config.collusion_aware
            and len(unit.results) >= self.config.replicas
        ):
            # Every expected replica arrived and no clique qualifies: the
            # unit's quorum has failed for good (mutually disagreeing
            # results — e.g. several independent falsifiers).
            unit.decided = True
            unit.failed = True
            self.quorums_failed += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now if self.sim is not None else 0.0,
                    "quorum.failed",
                    logical=key,
                    replicas_seen=len(unit.results),
                )
            if self.on_failed is not None:
                self.on_failed(key, [wu for wu, _ in unit.results])
            on_done()
            return
        if len(unit.results) > len(largest) and len(unit.results) >= 2:
            self.disagreements += 1
        on_done()

    # -- agreement ----------------------------------------------------------
    def _agrees(self, a: object, b: object) -> bool:
        vec_a, vec_b = _agreement_vector(a), _agreement_vector(b)
        if vec_a.shape != vec_b.shape:
            return False
        scale = max(float(np.linalg.norm(vec_a)), float(np.linalg.norm(vec_b)), 1e-30)
        return float(np.linalg.norm(vec_a - vec_b)) <= self.config.rtol * scale

    def _largest_agreeing_group(
        self, unit: _LogicalUnit
    ) -> list[tuple[Workunit, object]]:
        """Largest clique of mutually agreeing results (greedy by anchor:
        agreement is near-transitive at tight tolerances)."""
        best: list[tuple[Workunit, object]] = []
        for i, (wu_i, payload_i) in enumerate(unit.results):
            group = [
                (wu_j, payload_j)
                for wu_j, payload_j in unit.results
                if self._agrees(payload_i, payload_j)
            ]
            if len(group) > len(best):
                best = group
        return best

    # -- collusion-aware selection ------------------------------------------
    def _host_reliability(self, workunit: Workunit) -> float:
        if self.reliability_fn is None:
            return 1.0
        return float(self.reliability_fn(workunit.current_attempt.client_id))

    def _weighted_cliques(
        self, unit: _LogicalUnit
    ) -> list[tuple[list[tuple[Workunit, object]], float]]:
        """Anchor cliques deduplicated by membership, with reliability scores."""
        cliques: list[tuple[list[tuple[Workunit, object]], float]] = []
        seen: set[frozenset[str]] = set()
        for wu_i, payload_i in unit.results:
            members = [
                (wu_j, payload_j)
                for wu_j, payload_j in unit.results
                if self._agrees(payload_i, payload_j)
            ]
            ids = frozenset(wu.wu_id for wu, _ in members)
            if ids in seen:
                continue
            seen.add(ids)
            score = sum(self._host_reliability(wu) for wu, _ in members)
            cliques.append((members, score))
        return cliques

    def _collusion_decision(
        self, unit: _LogicalUnit
    ) -> list[tuple[Workunit, object]] | None:
        """Reliability-weighted canonical selection.

        Deterministic replicas are bit-identical *by design* (a replica's
        batch RNG derives from the logical id), so bit-exact agreement is
        not itself suspicious and a colluding cartel is indistinguishable
        from honest replicas by payload inspection alone.  The defense is
        the hosts' track record: cliques are scored by the sum of their
        members' scheduler reliability, and the decision waits until the
        leading clique cannot be overtaken — early only when no
        combination of the still-outstanding replicas (at the maximum
        reliability of 1.0 each) could beat it, otherwise once every
        expected replica has arrived.  When no clique reaches
        ``min_quorum`` at that point, a clique of trusted hosts (mean
        reliability >= ``trust_threshold``) that outweighs every
        competitor is accepted — BOINC's adaptive replication — else the
        quorum fails.  Returns the winning clique or None (keep waiting /
        fail).
        """
        cliques = self._weighted_cliques(unit)
        best = max(cliques, key=lambda c: (c[1], len(c[0])))
        competitor = max(
            (score for members, score in cliques if members is not best[0]),
            default=0.0,
        )
        arrivals = len(unit.results)
        remaining = self.config.replicas - arrivals
        if remaining > 0:
            if (
                len(best[0]) >= self.config.min_quorum
                and best[1] > competitor + remaining
            ):
                return best[0]
            return None
        if len(best[0]) >= self.config.min_quorum:
            return best[0]
        mean_reliability = best[1] / len(best[0])
        if mean_reliability >= self.config.trust_threshold and best[1] > competitor:
            return best[0]
        return None

    # -- introspection ----------------------------------------------------------
    def pending_units(self) -> int:
        """Logical units still waiting for quorum."""
        return sum(1 for u in self._units.values() if not u.decided)

    def decided_units(self) -> int:
        """Logical units whose canonical result was chosen."""
        return sum(1 for u in self._units.values() if u.decided)
