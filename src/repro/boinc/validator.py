"""Result validation (BOINC's validator service, §II-C).

Before a result is assimilated, the validator checks that the uploaded
payload is structurally sound: decodable, shape-complete against the
job's parameter template, and finite (a client that diverged to NaN/inf
must not poison the server copy).  Invalid results are rejected and the
workunit is reissued by the scheduler.

Payloads are either a bare flat parameter vector or a structured client
update — any object exposing ``params`` (required) and optionally
``gradient`` ndarray attributes, e.g. :class:`repro.core.rules.ClientUpdate`.
The BOINC layer stays agnostic of the concrete type; it validates both
vectors so neither a corrupted weight copy nor a divergent accumulated
gradient reaches an update rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.tracing import Trace

__all__ = ["ValidationResult", "ParameterValidator"]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one uploaded result."""

    ok: bool
    reason: str = ""


class ParameterValidator:
    """Validates uploaded parameter vectors against a template."""

    def __init__(
        self,
        expected_size: int,
        max_abs_value: float = 1e6,
        max_abs_gradient: float = 1e9,
        trace: Trace | None = None,
    ) -> None:
        self.expected_size = expected_size
        self.max_abs_value = max_abs_value
        self.max_abs_gradient = max_abs_gradient
        self.trace = trace
        self.accepted = 0
        self.rejected = 0

    def validate(
        self, payload: object, now: float = 0.0, wu_id: str = ""
    ) -> ValidationResult:
        """Check one uploaded result payload (vector or client update)."""
        result = self._check(payload)
        if result.ok:
            self.accepted += 1
        else:
            self.rejected += 1
        if self.trace is not None:
            self.trace.emit(
                now, "validator.checked", ok=result.ok, reason=result.reason, wu=wu_id
            )
        return result

    def _check(self, payload: object) -> ValidationResult:
        gradient = None
        if not isinstance(payload, np.ndarray):
            # Structured update: validate its parameter copy (and, when
            # present, the accumulated gradient the rule will consume).
            params = getattr(payload, "params", None)
            if params is None:
                return ValidationResult(False, f"payload type {type(payload).__name__}")
            gradient = getattr(payload, "gradient", None)
            payload = params
        verdict = self._check_vector(payload, "parameter", self.max_abs_value)
        if not verdict.ok or gradient is None:
            return verdict
        return self._check_vector(gradient, "gradient", self.max_abs_gradient)

    def _check_vector(
        self, vec: object, kind: str, bound: float
    ) -> ValidationResult:
        if not isinstance(vec, np.ndarray):
            return ValidationResult(False, f"{kind} type {type(vec).__name__}")
        if vec.ndim != 1:
            return ValidationResult(False, f"expected flat {kind} vector, got ndim={vec.ndim}")
        if vec.size != self.expected_size:
            return ValidationResult(
                False, f"{kind} size {vec.size} != expected {self.expected_size}"
            )
        if not np.isfinite(vec).all():
            return ValidationResult(False, f"non-finite {kind} values")
        peak = float(np.abs(vec).max()) if vec.size else 0.0
        if peak > bound:
            return ValidationResult(False, f"{kind} magnitude {peak:.3g} exceeds bound")
        return ValidationResult(True)
