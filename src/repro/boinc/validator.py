"""Result validation (BOINC's validator service, §II-C).

Before a result is assimilated, the validator checks that the uploaded
parameter payload is structurally sound: decodable, shape-complete against
the job's parameter template, and finite (a client that diverged to
NaN/inf must not poison the server copy).  Invalid results are rejected
and the workunit is reissued by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.tracing import Trace

__all__ = ["ValidationResult", "ParameterValidator"]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one uploaded result."""

    ok: bool
    reason: str = ""


class ParameterValidator:
    """Validates uploaded parameter vectors against a template."""

    def __init__(
        self,
        expected_size: int,
        max_abs_value: float = 1e6,
        trace: Trace | None = None,
    ) -> None:
        self.expected_size = expected_size
        self.max_abs_value = max_abs_value
        self.trace = trace
        self.accepted = 0
        self.rejected = 0

    def validate(self, payload: object, now: float = 0.0) -> ValidationResult:
        """Check one uploaded result payload (a flat parameter vector)."""
        result = self._check(payload)
        if result.ok:
            self.accepted += 1
        else:
            self.rejected += 1
        if self.trace is not None:
            self.trace.emit(now, "validator.checked", ok=result.ok, reason=result.reason)
        return result

    def _check(self, payload: object) -> ValidationResult:
        if not isinstance(payload, np.ndarray):
            return ValidationResult(False, f"payload type {type(payload).__name__}")
        if payload.ndim != 1:
            return ValidationResult(False, f"expected flat vector, got ndim={payload.ndim}")
        if payload.size != self.expected_size:
            return ValidationResult(
                False, f"size {payload.size} != expected {self.expected_size}"
            )
        if not np.isfinite(payload).all():
            return ValidationResult(False, "non-finite parameter values")
        peak = float(np.abs(payload).max()) if payload.size else 0.0
        if peak > self.max_abs_value:
            return ValidationResult(False, f"parameter magnitude {peak:.3g} exceeds bound")
        return ValidationResult(True)
