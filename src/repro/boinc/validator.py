"""Result validation (BOINC's validator service, §II-C).

Before a result is assimilated, the validator checks that the uploaded
payload is structurally sound: decodable, shape-complete against the
job's parameter template, and finite (a client that diverged to NaN/inf
must not poison the server copy).  An optional L2 norm bound on the
parameter copy rejects wildly out-of-distribution uploads — the cheapest
defense against gross falsification attacks that keep every coordinate
finite.  Invalid results are rejected and the workunit is reissued by
the scheduler.

Every verdict carries a *stable reason code* (``ValidationResult.code``)
alongside the freeform reason text, so rejection trace records can be
aggregated per failure class (see ``server.result_invalid`` in
docs/TRACE_KINDS.md).

Payloads are either a bare flat parameter vector or a structured client
update — any object exposing ``params`` (required) and optionally
``gradient`` ndarray attributes, e.g. :class:`repro.core.rules.ClientUpdate`.
The BOINC layer stays agnostic of the concrete type; it validates both
vectors so neither a corrupted weight copy nor a divergent accumulated
gradient reaches an update rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.tracing import Trace

__all__ = ["ValidationResult", "ParameterValidator", "REASON_CODES"]

#: Stable rejection reason codes (the trace/metrics aggregation keys).
REASON_CODES = ("decode", "shape", "size", "non_finite", "bound", "norm_bound", "ok")


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one uploaded result.

    ``code`` is a stable machine-readable reason class from
    :data:`REASON_CODES`; ``reason`` the human-readable detail.
    """

    ok: bool
    reason: str = ""
    code: str = "ok"


class ParameterValidator:
    """Validates uploaded parameter vectors against a template."""

    def __init__(
        self,
        expected_size: int,
        max_abs_value: float = 1e6,
        max_abs_gradient: float = 1e9,
        max_norm: float | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.expected_size = expected_size
        self.max_abs_value = max_abs_value
        self.max_abs_gradient = max_abs_gradient
        self.max_norm = max_norm
        self.trace = trace
        self.accepted = 0
        self.rejected = 0
        self.rejections_by_code: dict[str, int] = {}

    def validate(
        self, payload: object, now: float = 0.0, wu_id: str = ""
    ) -> ValidationResult:
        """Check one uploaded result payload (vector or client update)."""
        result = self._check(payload)
        if result.ok:
            self.accepted += 1
        else:
            self.rejected += 1
            self.rejections_by_code[result.code] = (
                self.rejections_by_code.get(result.code, 0) + 1
            )
        if self.trace is not None:
            self.trace.emit(
                now, "validator.checked", ok=result.ok, reason=result.reason, wu=wu_id
            )
        return result

    def _check(self, payload: object) -> ValidationResult:
        gradient = None
        if not isinstance(payload, np.ndarray):
            # Structured update: validate its parameter copy (and, when
            # present, the accumulated gradient the rule will consume).
            params = getattr(payload, "params", None)
            if params is None:
                return ValidationResult(
                    False, f"payload type {type(payload).__name__}", "decode"
                )
            gradient = getattr(payload, "gradient", None)
            payload = params
        verdict = self._check_vector(payload, "parameter", self.max_abs_value)
        if not verdict.ok:
            return verdict
        if self.max_norm is not None:
            norm = float(np.linalg.norm(payload))
            if norm > self.max_norm:
                return ValidationResult(
                    False,
                    f"parameter norm {norm:.3g} exceeds bound {self.max_norm:.3g}",
                    "norm_bound",
                )
        if gradient is None:
            return verdict
        return self._check_vector(gradient, "gradient", self.max_abs_gradient)

    def _check_vector(
        self, vec: object, kind: str, bound: float
    ) -> ValidationResult:
        if not isinstance(vec, np.ndarray):
            return ValidationResult(False, f"{kind} type {type(vec).__name__}", "decode")
        if vec.ndim != 1:
            return ValidationResult(
                False, f"expected flat {kind} vector, got ndim={vec.ndim}", "shape"
            )
        if vec.size != self.expected_size:
            return ValidationResult(
                False, f"{kind} size {vec.size} != expected {self.expected_size}", "size"
            )
        if not np.isfinite(vec).all():
            return ValidationResult(False, f"non-finite {kind} values", "non_finite")
        peak = float(np.abs(vec).max()) if vec.size else 0.0
        if peak > bound:
            return ValidationResult(
                False, f"{kind} magnitude {peak:.3g} exceeds bound", "bound"
            )
        return ValidationResult(True)
