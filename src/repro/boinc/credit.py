"""Volunteer credit accounting (§II-A's non-monetary incentive).

Volunteer computing works because hosts earn *credit* — BOINC's public
score of contributed computation.  The essentials implemented here follow
BOINC's model:

* each completed result carries a **claimed credit** proportional to the
  work performed (we use the workunit's work-unit cost; BOINC uses
  benchmarked FLOPs × runtime);
* for replicated workunits the **granted credit** is the same for every
  host in the quorum and is derived from the agreeing claims (BOINC grants
  the average/median of the valid claims — defeating claim inflation);
* hosts that return invalid or late results get nothing;
* a leaderboard aggregates granted credit per host, with a recent-average
  (exponentially decayed) figure BOINC uses to rank active contributors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CreditClaim", "HostCredit", "CreditLedger"]


@dataclass(frozen=True)
class CreditClaim:
    """One host's claim for one completed result."""

    host_id: str
    wu_id: str
    claimed: float

    def __post_init__(self) -> None:
        if self.claimed < 0:
            raise ConfigurationError("claimed credit must be non-negative")


@dataclass
class HostCredit:
    """Aggregate credit state of one host."""

    host_id: str
    total: float = 0.0
    recent_average: float = 0.0
    results_granted: int = 0
    results_denied: int = 0
    last_update_s: float = 0.0


class CreditLedger:
    """Grants and aggregates credit across hosts.

    ``half_life_s`` controls the recent-average decay (BOINC uses ~1 week;
    scaled down here to match simulated experiment horizons).

    ``claim_cap_factor`` hardens 2-replica quorums against claim
    inflation.  With two claims the median *is* the midpoint, so a single
    cheater claiming 100x still pockets ~50x.  BOINC's production
    validators sanity-cap grants against historical claims for the same
    app version; here every quorum grant is capped at
    ``claim_cap_factor`` times the median of a sliding window of recent
    claims (all claims seen by :meth:`grant_quorum`, honest and not).
    The cap only engages once the window holds ``_CLAIM_WINDOW_MIN``
    claims, so cold-start grants are never distorted, and equal honest
    claims sit far below the cap and are unaffected.  ``None`` disables
    the cap (pre-hardening behaviour).
    """

    _CLAIM_WINDOW = 101
    _CLAIM_WINDOW_MIN = 5

    def __init__(
        self,
        half_life_s: float = 24 * 3600.0,
        claim_cap_factor: float | None = 2.0,
    ) -> None:
        if half_life_s <= 0:
            raise ConfigurationError("half_life_s must be positive")
        if claim_cap_factor is not None and claim_cap_factor < 1.0:
            raise ConfigurationError("claim_cap_factor must be >= 1 (or None)")
        self.half_life_s = half_life_s
        self.claim_cap_factor = claim_cap_factor
        self.hosts: dict[str, HostCredit] = {}
        self.granted_total = 0.0
        self.claims_capped = 0
        self._recent_claims: deque[float] = deque(maxlen=self._CLAIM_WINDOW)

    def _host(self, host_id: str) -> HostCredit:
        host = self.hosts.get(host_id)
        if host is None:
            host = HostCredit(host_id=host_id)
            self.hosts[host_id] = host
        return host

    def _decay(self, host: HostCredit, now: float) -> None:
        dt = now - host.last_update_s
        if dt > 0:
            host.recent_average *= 0.5 ** (dt / self.half_life_s)
            host.last_update_s = now

    # -- granting ---------------------------------------------------------
    def grant_single(self, claim: CreditClaim, now: float) -> float:
        """Unreplicated result: grant exactly the claim."""
        host = self._host(claim.host_id)
        self._decay(host, now)
        host.total += claim.claimed
        host.recent_average += claim.claimed
        host.results_granted += 1
        self.granted_total += claim.claimed
        return claim.claimed

    def grant_quorum(self, claims: list[CreditClaim], now: float) -> float:
        """Replicated result: every quorum member gets the *median* claim.

        The median defeats a single host inflating its claim (BOINC's
        motivation for averaging valid claims) — except in 2-replica
        quorums, where the median degenerates to the midpoint; there the
        recent-claim cap (see class docstring) bounds the damage.
        Returns the per-host grant.
        """
        if not claims:
            raise ConfigurationError("grant_quorum with no claims")
        grant = float(np.median([c.claimed for c in claims]))
        if (
            self.claim_cap_factor is not None
            and len(self._recent_claims) >= self._CLAIM_WINDOW_MIN
        ):
            cap = self.claim_cap_factor * float(np.median(self._recent_claims))
            if grant > cap:
                grant = cap
                self.claims_capped += 1
        self._recent_claims.extend(c.claimed for c in claims)
        for claim in claims:
            host = self._host(claim.host_id)
            self._decay(host, now)
            host.total += grant
            host.recent_average += grant
            host.results_granted += 1
            self.granted_total += grant
        return grant

    def deny(self, host_id: str, now: float) -> None:
        """Invalid/stale result: no credit, and the denial is recorded."""
        host = self._host(host_id)
        self._decay(host, now)
        host.results_denied += 1

    # -- queries --------------------------------------------------------------
    def leaderboard(self, now: float | None = None) -> list[HostCredit]:
        """Hosts sorted by total credit, descending (ties by id)."""
        hosts = list(self.hosts.values())
        if now is not None:
            for host in hosts:
                self._decay(host, now)
        return sorted(hosts, key=lambda h: (-h.total, h.host_id))

    def host_total(self, host_id: str) -> float:
        """Total granted credit of one host (0 for unknown hosts)."""
        return self._host(host_id).total
