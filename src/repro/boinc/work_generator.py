"""Work generator: turns a training job into per-epoch workunits (§III-A).

"The work generator component splits a single DL training job into multiple
training subtasks": it shards the dataset once, publishes the shard files
and the model-architecture file (both sticky — cached on clients), and at
each epoch mints one workunit per shard referencing the *current* server
parameter file (not sticky — refreshed every assimilation).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from ..data.dataset import Dataset
from ..data.sharding import split_dataset
from ..errors import ConfigurationError
from .files import FileCatalog, ServerFile
from .replication import replica_id
from .workunit import Workunit

__all__ = ["WorkGenerator"]

# Shard files are serialized purely to *measure* them (the catalogue ships
# the Dataset object itself; only the byte counts feed the transfer model).
# The npz encode — especially the deflate pass — costs tens of ms per
# shard and every sweep point re-creates an identical sharding, so sizes
# are memoised by shard content.
_SHARD_SIZE_CACHE: "OrderedDict[tuple[bytes, bool], int]" = OrderedDict()
_SHARD_SIZE_CACHE_MAX = 512


def _shard_digest(shard: Dataset) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    h.update(shard.name.encode())
    for arr in (shard.x, shard.y):
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.digest()


def _shard_nbytes(shard: Dataset, digest: bytes, compress: bool) -> int:
    key = (digest, compress)
    cached = _SHARD_SIZE_CACHE.get(key)
    if cached is not None:
        _SHARD_SIZE_CACHE.move_to_end(key)
        return cached
    size = len(shard.to_bytes(compress=compress))
    _SHARD_SIZE_CACHE[key] = size
    while len(_SHARD_SIZE_CACHE) > _SHARD_SIZE_CACHE_MAX:
        _SHARD_SIZE_CACHE.popitem(last=False)
    return size


class WorkGenerator:
    """Creates and publishes training subtasks for one job."""

    def __init__(
        self,
        job_id: str,
        catalog: FileCatalog,
        train_set: Dataset,
        num_shards: int,
        model_spec_json: str,
        timeout_s: float,
        work_units_per_subtask: float = 144.0,
        work_jitter: float = 0.10,
        max_attempts: int = 5,
        rng: np.random.Generator | None = None,
        compress_shards: bool = True,
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if work_units_per_subtask <= 0:
            raise ConfigurationError("work_units_per_subtask must be positive")
        self.job_id = job_id
        self.catalog = catalog
        self.num_shards = num_shards
        self.timeout_s = timeout_s
        self.work_units_per_subtask = work_units_per_subtask
        self.work_jitter = work_jitter
        self.max_attempts = max_attempts
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.shards = split_dataset(train_set, num_shards, rng=self.rng, strategy="shuffled")
        self.model_file_name = f"{job_id}:model.json"
        self._publish_static(model_spec_json, compress_shards)

    def _publish_static(self, model_spec_json: str, compress_shards: bool) -> None:
        """Publish the architecture file and all data shards (sticky)."""
        spec_bytes = model_spec_json.encode()
        self.catalog.publish(
            ServerFile(
                name=self.model_file_name,
                payload=model_spec_json,
                raw_size=len(spec_bytes),
                compressed_size=ServerFile.AUTO,
                sticky=True,
            )
        )
        for shard in self.shards:
            digest = _shard_digest(shard)
            raw = _shard_nbytes(shard, digest, compress=False)
            compressed = (
                _shard_nbytes(shard, digest, compress=True)
                if compress_shards
                else raw
            )
            self.catalog.publish(
                ServerFile(
                    name=f"{self.job_id}:{shard.name}",
                    payload=shard,
                    raw_size=raw,
                    compressed_size=compressed,
                    sticky=True,
                )
            )

    def shard_file_name(self, shard_index: int) -> str:
        """Catalogue name of the data-shard file for one shard index."""
        return f"{self.job_id}:{self.shards[shard_index].name}"

    def make_epoch(
        self, epoch: int, param_file_name: str, replicas: int = 1
    ) -> list[Workunit]:
        """Mint workunits for ``epoch``: one logical subtask per shard,
        ``replicas`` physical workunits per subtask (§II-C redundancy).

        ``param_file_name`` is the catalogue entry holding the server
        parameter copy the clients should start from.  Per-subtask compute
        cost gets a small lognormal jitter (real subtasks are never exactly
        equal); draws are consumed in shard order so runs are reproducible.
        """
        if epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        workunits: list[Workunit] = []
        for shard_index in range(self.num_shards):
            base_id = f"{self.job_id}:e{epoch:03d}:s{shard_index:03d}"
            workunits.extend(
                self._mint_subtask(base_id, epoch, shard_index, param_file_name, replicas)
            )
        return workunits

    def make_retries(
        self,
        epoch: int,
        param_file_name: str,
        shard_indices: list[int],
        round_index: int,
        replicas: int = 1,
    ) -> list[Workunit]:
        """Mint replacement workunits for shards whose subtask failed
        permanently (all attempts of all replicas exhausted).

        Used by barrier-style update rules that cannot close an epoch while
        any shard's update is missing: the original workunit ids are spent,
        so replacements carry a ``:b<round>`` suffix and fresh attempt
        budgets.
        """
        if round_index < 1:
            raise ConfigurationError("round_index must be >= 1")
        workunits: list[Workunit] = []
        for shard_index in shard_indices:
            base_id = (
                f"{self.job_id}:e{epoch:03d}:s{shard_index:03d}:b{round_index}"
            )
            workunits.extend(
                self._mint_subtask(base_id, epoch, shard_index, param_file_name, replicas)
            )
        return workunits

    def _mint_subtask(
        self,
        base_id: str,
        epoch: int,
        shard_index: int,
        param_file_name: str,
        replicas: int,
        rng: np.random.Generator | None = None,
    ) -> list[Workunit]:
        """One logical subtask: ``replicas`` physical workunits sharing a
        jitter draw (replicas must be bit-identical, §II-C).

        ``rng`` overrides the generator's own stream — sharded server
        planes mint with per-plane streams so each plane's draw sequence
        is independent of how subtasks interleave across planes.
        """
        if rng is None:
            rng = self.rng
        jitter = (
            float(rng.lognormal(mean=0.0, sigma=self.work_jitter))
            if self.work_jitter > 0
            else 1.0
        )
        return [
            Workunit(
                wu_id=base_id if replicas == 1 else replica_id(base_id, replica),
                job_id=self.job_id,
                epoch=epoch,
                shard_index=shard_index,
                input_files=(
                    self.model_file_name,
                    param_file_name,
                    self.shard_file_name(shard_index),
                ),
                work_units=self.work_units_per_subtask * jitter,
                timeout_s=self.timeout_s,
                max_attempts=self.max_attempts,
            )
            for replica in range(replicas)
        ]
