"""Trace-to-metrics bridge: turns trace records into registry instruments.

The collector is a :class:`~repro.simulation.tracing.Trace` observer; it
maps the substrate's existing event stream onto named metrics so nothing
in the scheduler/client/store hot paths needs to know the registry
exists.  It is a pure reader — it never touches simulation state or
randomness, which is what keeps instrumented runs bit-identical to bare
ones.

Metric names are part of the telemetry schema; the full table lives in
DESIGN.md §"Observability".
"""

from __future__ import annotations

from typing import Callable

from ..simulation.tracing import TraceRecord
from .metrics import MetricsRegistry

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Maps trace events to counters/gauges/histograms in a registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._epoch_started: dict[int, float] = {}
        self._handlers: dict[str, Callable[[TraceRecord], None]] = {
            "web.download": self._on_download,
            "web.upload": self._on_upload,
            "web.xfer_fail": self._count("transfer.failures"),
            "net.retry": self._count("transfer.retries"),
            "net.gave_up": self._count("transfer.abandoned"),
            "client.turnaround": self._on_turnaround,
            "ps.assimilated": self._on_ps_assimilated,
            "ps.crash": self._count("ps.crashes"),
            "ps.recover": self._count("ps.recoveries"),
            "kv.read": self._on_kv_read,
            "kv.write": self._on_kv_write,
            "kv.update": self._on_kv_update,
            "kv.lost_update": self._count("kv.lost_updates"),
            "sched.created": self._count("sched.workunits_created"),
            "sched.assign": self._count("sched.assignments"),
            "sched.timeout": self._count("sched.timeouts"),
            "sched.exhausted": self._count("sched.exhausted"),
            "sched.stale_result": self._count("sched.stale_results"),
            "epoch.start": self._on_epoch_start,
            "epoch.end": self._on_epoch_end,
            "params.publish": self._on_publish,
            "credit.grant": self._on_credit_grant,
            "adv.tamper": self._count("adv.tampered_uploads"),
            "adv.claim_inflate": self._count("adv.claim_inflates"),
            "credit.quarantine": self._count("credit.quarantines"),
            "quorum.failed": self._count("quorum.failures"),
        }

    # -- Trace observer protocol ---------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        handler = self._handlers.get(record.kind)
        if handler is not None:
            handler(record)

    def on_counter(self, kind: str, amount: int) -> None:
        pass  # bare counter bumps already live in Trace.counters

    # -- handlers -------------------------------------------------------
    def _count(self, name: str) -> Callable[[TraceRecord], None]:
        counter = self.registry.counter(name)
        return lambda record: counter.incr()

    def _on_download(self, r: TraceRecord) -> None:
        self.registry.histogram("transfer.download_s").observe(r["seconds"])

    def _on_upload(self, r: TraceRecord) -> None:
        self.registry.histogram("transfer.upload_s").observe(r["seconds"])

    def _on_turnaround(self, r: TraceRecord) -> None:
        self.registry.histogram("client.turnaround_s").observe(r["seconds"])

    def _on_ps_assimilated(self, r: TraceRecord) -> None:
        self.registry.counter("ps.assimilations").incr()
        self.registry.histogram("ps.queue_wait_s").observe(r["queue_wait"])
        service = r.get("service")
        if service is not None:
            self.registry.histogram("ps.service_s").observe(service)

    def _on_kv_read(self, r: TraceRecord) -> None:
        self.registry.counter("kv.reads").incr()
        self.registry.histogram("kv.read_latency_s").observe(r["latency"])

    def _on_kv_write(self, r: TraceRecord) -> None:
        self.registry.counter("kv.writes").incr()
        self.registry.histogram("kv.write_latency_s").observe(r["latency"])

    def _on_kv_update(self, r: TraceRecord) -> None:
        self.registry.counter("kv.updates").incr()
        self.registry.histogram("kv.update_latency_s").observe(r["latency"])

    def _on_epoch_start(self, r: TraceRecord) -> None:
        self._epoch_started[r["epoch"]] = r.time

    def _on_epoch_end(self, r: TraceRecord) -> None:
        started = self._epoch_started.pop(r["epoch"], None)
        if started is not None:
            self.registry.histogram("epoch.duration_s").observe(r.time - started)
        self.registry.gauge("epoch.accuracy").set(r["accuracy"])

    def _on_publish(self, r: TraceRecord) -> None:
        self.registry.gauge("params.version").set(r["version"])

    def _on_credit_grant(self, r: TraceRecord) -> None:
        self.registry.counter("credit.grants").incr()
        gauge = self.registry.gauge("credit.granted_total")
        gauge.set((gauge.value or 0.0) + r["amount"])
