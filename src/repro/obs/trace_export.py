"""Chrome/Perfetto trace-event export of the causal span tree.

Converts a :class:`~repro.obs.spans.SpanStore` into the Trace Event
Format JSON that ``chrome://tracing`` and https://ui.perfetto.dev load
directly: one "process" track per actor (server, parameter server, run
timeline, each KV store, each client), "X" complete events for spans,
and "s"/"t"/"f" flow arrows stitching each workunit's lineage across
tracks — generate on the server, hop to the client for train, back to
the server for validation, onto the PS for the merge.

Simulated seconds map to trace microseconds, so one sim-second renders
as 1 ms in the UI — readable at default zoom for runs lasting simulated
hours.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .spans import Span, SpanStore

__all__ = ["build_perfetto_trace", "write_perfetto_trace", "validate_perfetto"]

# sim seconds -> trace-event microseconds (1 s == 1000 us keeps runs
# lasting simulated hours readable at Perfetto's default zoom).
_US_PER_S = 1_000.0

# Track ordering: fixed actors first, then clients, then KV stores.
_FIXED_TRACKS = ("run", "server", "ps")


def _track_order(store: SpanStore) -> list[str]:
    tracks = set(store.tracks())
    ordered = [t for t in _FIXED_TRACKS if t in tracks]
    ordered += sorted(t for t in tracks if t not in _FIXED_TRACKS and not t.startswith("kv:"))
    ordered += sorted(t for t in tracks if t.startswith("kv:"))
    return ordered


def _args(span: Span) -> dict[str, Any]:
    args: dict[str, Any] = {}
    if span.wu is not None:
        args["wu"] = span.wu
    if span.client is not None:
        args["client"] = span.client
    for key, value in span.attrs.items():
        if value is not None:
            args[key] = value
    return args


def build_perfetto_trace(store: SpanStore) -> dict[str, Any]:
    """The trace-event document (``json.dump``-ready) for a span store."""
    events: list[dict[str, Any]] = []
    pids = {track: i + 1 for i, track in enumerate(_track_order(store))}
    for track, pid in pids.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for span in store.spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": pids[span.track],
                "tid": 0,
                "ts": span.start * _US_PER_S,
                "dur": max(span.duration, 0.0) * _US_PER_S,
                "args": _args(span),
            }
        )
    events.extend(_flow_events(store, pids))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _flow_events(
    store: SpanStore, pids: dict[str, int]
) -> list[dict[str, Any]]:
    """One flow chain per lineage, linking its hops across tracks.

    Perfetto draws an arrow wherever consecutive steps sit on different
    tracks — exactly the replica's causal hand-offs (server -> client ->
    server -> PS).  Same-track steps are skipped; the containment on the
    track already shows the order.
    """
    flows: list[dict[str, Any]] = []
    for flow_id, (wu, lineage) in enumerate(sorted(store.lineages.items()), start=1):
        chain: list[Span] = []
        for span in store.lineage_spans(wu):
            if span.span_id == lineage.root or span.name == "wu.attempt":
                continue
            if not chain or chain[-1].track != span.track:
                chain.append(span)
        if len(chain) < 2:
            continue
        for step, span in enumerate(chain):
            ph = "s" if step == 0 else ("f" if step == len(chain) - 1 else "t")
            event = {
                "ph": ph,
                "id": flow_id,
                "name": f"lineage:{wu}",
                "cat": "lineage",
                "pid": pids[span.track],
                "tid": 0,
                # Bind to the start edge of the span; finish steps attach
                # at the enclosing slice, which needs bp for "enclosing".
                "ts": span.start * _US_PER_S,
            }
            if ph == "f":
                event["bp"] = "e"
            flows.append(event)
    return flows


def write_perfetto_trace(store: SpanStore, path: str | Path) -> int:
    """Write the trace-event JSON; returns the event count."""
    doc = build_perfetto_trace(store)
    problems = validate_perfetto(doc)
    if problems:  # refuse to write a file the UI would reject
        raise ValueError("invalid trace-event doc: " + "; ".join(problems[:5]))
    Path(path).write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
    return len(doc["traceEvents"])


# ---------------------------------------------------------------------------
# Validation (the CI gate for exported artifacts)
# ---------------------------------------------------------------------------

_REQUIRED_BY_PHASE = {
    "X": ("name", "pid", "ts", "dur"),
    "M": ("name", "pid", "args"),
    "s": ("id", "pid", "ts"),
    "t": ("id", "pid", "ts"),
    "f": ("id", "pid", "ts"),
}


def validate_perfetto(doc: Any) -> list[str]:
    """Structural problems in a trace-event document (empty == valid).

    Checks the subset of the Trace Event Format contract that the
    exporter relies on: a ``traceEvents`` array, known phases with their
    required fields, non-negative timestamps/durations, and flow chains
    that start with "s" and end with "f".
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a traceEvents array"]
    flow_phases: dict[Any, list[str]] = {}
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(ph)
        if required is None:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for key in required:
            if key not in event:
                problems.append(f"event {i} (ph={ph}): missing {key!r}")
        if ph == "X":
            ts, dur = event.get("ts", 0), event.get("dur", 0)
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: negative dur {dur!r}")
        if ph in ("s", "t", "f"):
            flow_phases.setdefault(event.get("id"), []).append(ph)
    for flow_id, phases in flow_phases.items():
        if phases[0] != "s":
            problems.append(f"flow {flow_id}: does not start with 's'")
        if phases[-1] != "f":
            problems.append(f"flow {flow_id}: does not end with 'f'")
        if len(phases) < 2:
            problems.append(f"flow {flow_id}: fewer than two steps")
    return problems
