"""Trace persistence: schema-versioned JSONL dump/load of TraceRecords.

``repro run --trace-out run.jsonl`` writes the raw record stream with
this module; ``repro trace run.jsonl`` (and any offline tooling) reads it
back into :class:`~repro.simulation.tracing.TraceRecord` objects that are
field-for-field equivalent to the live trace, so span reconstruction and
Perfetto export work identically on live and replayed traces.

Format: line 1 is a header object ``{"schema": "repro.trace",
"version": 1, ...}``; every following line is one record as
``{"time": ..., "kind": ..., "fields": {...}}``.  Keys are sorted and
floats serialized with ``repr`` fidelity, so identical runs produce
byte-identical files — the dump itself is a reproducibility artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

from ..simulation.tracing import Trace, TraceRecord

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "iter_trace_jsonl",
    "TraceSchemaError",
]

TRACE_SCHEMA = "repro.trace"
TRACE_SCHEMA_VERSION = 1


class TraceSchemaError(ValueError):
    """The file is not a readable repro trace dump."""


def _sanitize(value: Any) -> Any:
    """JSON-encodable copy of a record field.

    Emit sites mostly pass python scalars, but a few fields carry numpy
    scalars (accuracies, latencies) or lists of filenames; anything truly
    opaque degrades to ``repr`` rather than failing the dump.
    """
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_sanitize(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    return repr(value)


def write_trace_jsonl(
    trace: Trace | Iterable[TraceRecord],
    path: str | Path,
    *,
    meta: dict[str, Any] | None = None,
) -> int:
    """Dump the record stream to ``path``; returns the record count.

    ``meta`` (seed, config digest, ...) is embedded in the header line.
    When given a live :class:`Trace`, its counters — including
    ``trace.dropped`` for bounded traces — ride along in the header so a
    replay knows whether it is looking at a complete history.
    """
    path = Path(path)
    header: dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "version": TRACE_SCHEMA_VERSION,
    }
    if isinstance(trace, Trace):
        header["counters"] = dict(sorted(trace.counters.items()))
        if trace.max_records is not None:
            header["max_records"] = trace.max_records
    if meta:
        header["meta"] = _sanitize(meta)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for record in trace:
            fh.write(
                json.dumps(
                    {
                        "time": record.time,
                        "kind": record.kind,
                        "fields": _sanitize(record.fields),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            count += 1
    return count


def _parse_header(line: str, path: Path) -> dict[str, Any]:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"{path}: first line is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        raise TraceSchemaError(
            f"{path}: missing {TRACE_SCHEMA!r} header (is this a trace dump?)"
        )
    version = header.get("version")
    if version != TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"{path}: unsupported trace schema version {version!r} "
            f"(this build reads version {TRACE_SCHEMA_VERSION})"
        )
    return header


def iter_trace_jsonl(path: str | Path) -> Iterator[TraceRecord]:
    """Stream records from a dump without materializing the list."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise TraceSchemaError(f"{path}: empty file")
        _parse_header(first, path)
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: bad record: {exc}") from exc
            yield TraceRecord(
                time=float(obj["time"]),
                kind=str(obj["kind"]),
                fields=dict(obj.get("fields", {})),
            )


def read_trace_jsonl(
    path: str | Path,
) -> tuple[dict[str, Any], list[TraceRecord]]:
    """Load a dump: returns ``(header, records)``."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise TraceSchemaError(f"{path}: empty file")
        header = _parse_header(first, path)
    return header, list(iter_trace_jsonl(path))
