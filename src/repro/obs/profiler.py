"""Wall-clock attribution for the discrete-event engine.

The simulator's virtual clock says where *simulated* time goes; this
profiler says where *real* CPU time goes, by timing every event callback
and bucketing by the event's label prefix (the part before the first
``:``, e.g. ``client:c1:compute`` -> ``client``).  Attach by setting
``sim.profiler``; detached (the default) the engine dispatch path is
untouched.

Real computation — NumPy training steps — happens inside callbacks, so
this is exactly the per-stage runtime breakdown Rudra-style studies need.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

__all__ = ["SimProfiler"]


class SimProfiler:
    """Per-label-prefix event counts and wall-clock totals."""

    def __init__(self) -> None:
        self.total_events = 0
        self.total_wall_s = 0.0
        self.events_by_label: dict[str, int] = {}
        self.wall_by_label: dict[str, float] = {}

    def run_event(self, label: str, callback: Callable[[], None]) -> None:
        """Engine hook: execute ``callback`` and attribute its wall time."""
        key = label.split(":", 1)[0] if label else "<unlabeled>"
        start = perf_counter()
        try:
            callback()
        finally:
            elapsed = perf_counter() - start
            self.total_events += 1
            self.total_wall_s += elapsed
            self.events_by_label[key] = self.events_by_label.get(key, 0) + 1
            self.wall_by_label[key] = self.wall_by_label.get(key, 0.0) + elapsed

    def report(self) -> dict[str, Any]:
        """Plain-data summary, labels sorted by wall-clock share (desc)."""
        by_label = {
            label: {
                "events": self.events_by_label[label],
                "wall_s": self.wall_by_label[label],
            }
            for label in sorted(
                self.wall_by_label, key=lambda k: -self.wall_by_label[k]
            )
        }
        return {
            "total_events": self.total_events,
            "total_wall_s": self.total_wall_s,
            "by_label": by_label,
        }
