"""Always-on invariant auditor: conservation laws checked from the trace.

The auditor observes the live trace stream (or replays a finished trace)
and maintains just enough state to assert the system's conservation laws:

* **Lifecycle** — a workunit is created exactly once, is only assigned
  while live, and every created unit reaches exactly one terminal fate
  (validated-DONE, exhausted-ERROR, or cancelled).
* **Exactly-once assimilation** — each validated result is granted credit
  once and assimilated once, even across parameter-server crashes,
  adoptions and restarts; pool merges never exceed server assimilations.
* **Credit conservation** — the ledger's granted total equals the sum of
  per-result grants seen in the trace, and only validated results earn.
* **Version monotonicity** — published parameter versions strictly
  increase (a regression here would resurrect the stale-tag bugs the
  ``VersionedParams`` payload design eliminated).
* **Epoch bracketing** — ``epoch.start``/``epoch.end`` nest like a
  well-formed sequence of non-overlapping spans.

The auditor is a *pure reader*: it never touches simulation state or
randomness, so an audited run is bit-identical to a bare one (pinned by
tests/core/test_determinism.py).  Violations are collected and raised as
:class:`~repro.errors.InvariantViolation` at :meth:`verify` — or
immediately, in ``strict`` mode.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..boinc.replication import logical_id
from ..errors import InvariantViolation
from ..simulation.tracing import Trace, TraceRecord

__all__ = ["AuditReport", "InvariantAuditor"]


@dataclass
class AuditReport:
    """Outcome of a verification pass: what was checked, what failed."""

    checks: int = 0
    records_seen: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "checks": self.checks,
            "records_seen": self.records_seen,
            "violations": list(self.violations),
        }


class InvariantAuditor:
    """Online conservation-law checker over the trace event stream."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: list[str] = []
        self.checks = 0
        self.records_seen = 0
        self.kind_counts: Counter[str] = Counter()
        # Lifecycle state, keyed by workunit id.
        self._created: dict[str, tuple[int, int]] = {}  # wu -> (epoch, shard)
        self._valid: set[str] = set()  # server.result_valid seen
        self._granted: dict[str, float] = {}  # wu -> credit amount
        self._assimilated: set[str] = set()  # server.assimilated seen
        self._pool_merged: set[str] = set()  # ps.assimilated seen
        self._exhausted: set[str] = set()  # sched.exhausted (-> ERROR)
        self._cancelled: set[str] = set()  # sched.cancelled
        self._denials = 0
        # Quorum-deferred credit bookkeeping: valid replicas denied by
        # their quorum (loser/failed), and logical units whose quorum
        # reached a verdict (reached or failed) — replicas of undecided
        # units may legitimately end the run unpaid.
        self._quorum_denied: set[str] = set()
        self._decided_logicals: set[str] = set()
        self._quarantined_hosts: set[str] = set()
        self._last_version: int | None = None
        self._open_epoch: int | None = None
        self._epochs_ended = 0

    # -- Trace observer protocol ---------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        self.records_seen += 1
        self.kind_counts[record.kind] += 1
        handler = getattr(self, "_audit_" + record.kind.replace(".", "_"), None)
        if handler is not None:
            handler(record)

    def on_counter(self, kind: str, amount: int) -> None:
        self.kind_counts[kind] += amount

    def replay(self, trace: Trace) -> None:
        """Feed an already-recorded trace through the online checks."""
        for record in trace:
            self.on_record(record)

    # -- online checks --------------------------------------------------
    def _check(self, condition: bool, message: str) -> None:
        self.checks += 1
        if not condition:
            self.violations.append(message)
            if self.strict:
                raise InvariantViolation(message)

    def _audit_sched_created(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(wu not in self._created, f"workunit {wu} created twice")
        self._created[wu] = (r["epoch"], r["shard"])

    def _audit_sched_assign(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(wu in self._created, f"assignment of unknown workunit {wu}")
        self._check(
            wu not in self._valid
            and wu not in self._exhausted
            and wu not in self._cancelled,
            f"workunit {wu} assigned after reaching a terminal state",
        )
        client = r.get("client")
        self._check(
            client not in self._quarantined_hosts,
            f"workunit {wu} assigned to quarantined host {client}",
        )

    def _audit_sched_exhausted(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(
            wu not in self._valid, f"workunit {wu} exhausted after validation"
        )
        self._exhausted.add(wu)

    def _audit_sched_cancelled(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(
            wu not in self._valid, f"workunit {wu} cancelled after validation"
        )
        self._cancelled.add(wu)

    def _audit_server_result_valid(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(wu in self._created, f"validated result for unknown workunit {wu}")
        self._check(wu not in self._valid, f"workunit {wu} validated twice")
        self._check(
            wu not in self._exhausted and wu not in self._cancelled,
            f"terminal workunit {wu} validated",
        )
        self._valid.add(wu)

    def _audit_credit_grant(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(wu in self._valid, f"credit granted for unvalidated workunit {wu}")
        self._check(wu not in self._granted, f"credit granted twice for workunit {wu}")
        self._granted[wu] = float(r["amount"])

    def _audit_credit_deny(self, r: TraceRecord) -> None:
        self._denials += 1
        wu = r.get("wu")
        if wu in self._valid:
            # Denial of an already-valid result can only come from the
            # quorum (loser clique or failed unit) — partition it out of
            # the must-be-paid set checked at verify().
            self._quorum_denied.add(wu)

    def _audit_quorum_reached(self, r: TraceRecord) -> None:
        self._decided_logicals.add(r["logical"])

    def _audit_quorum_failed(self, r: TraceRecord) -> None:
        self._decided_logicals.add(r["logical"])

    def _audit_credit_quarantine(self, r: TraceRecord) -> None:
        host = r["host"]
        self._check(
            host not in self._quarantined_hosts, f"host {host} quarantined twice"
        )
        self._quarantined_hosts.add(host)

    def _audit_server_assimilated(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(wu in self._valid, f"unvalidated workunit {wu} assimilated")
        self._check(wu not in self._assimilated, f"workunit {wu} assimilated twice")
        self._assimilated.add(wu)

    def _audit_ps_assimilated(self, r: TraceRecord) -> None:
        wu = r["wu"]
        self._check(
            wu not in self._pool_merged, f"pool merged workunit {wu} twice"
        )
        self._pool_merged.add(wu)

    def _audit_params_publish(self, r: TraceRecord) -> None:
        version = r["version"]
        self._check(
            self._last_version is None or version > self._last_version,
            f"publish version not monotone: {self._last_version} -> {version}",
        )
        self._last_version = version

    def _audit_epoch_start(self, r: TraceRecord) -> None:
        self._check(
            self._open_epoch is None,
            f"epoch {r['epoch']} started while epoch {self._open_epoch} is open",
        )
        self._open_epoch = r["epoch"]

    def _audit_epoch_end(self, r: TraceRecord) -> None:
        self._check(
            self._open_epoch == r["epoch"],
            f"epoch {r['epoch']} ended but open epoch is {self._open_epoch}",
        )
        self._open_epoch = None
        self._epochs_ended += 1

    # -- final verification ---------------------------------------------
    def verify(
        self, runner: Any = None, *, require_full_coverage: bool = False
    ) -> AuditReport:
        """End-of-run conservation pass; raises on any violation.

        ``runner`` (a ``DistributedRunner``) enables the cross-checks
        against ground truth the trace alone cannot see: scheduler state,
        the credit ledger, and ``RunResult`` counters.
        ``require_full_coverage`` additionally demands a DONE result for
        every (epoch, shard) — true for the chaos soaks, but *not* an
        invariant of fault-tolerant rules in general, which may finish an
        epoch with permanently failed shards.
        """
        # Every validated result assimilated exactly once, and vice versa.
        self._check(
            self._valid == self._assimilated,
            "validated/assimilated mismatch: "
            f"unassimilated={sorted(self._valid - self._assimilated)} "
            f"phantom={sorted(self._assimilated - self._valid)}",
        )
        # Credit: every validated result is either granted once or denied
        # by its quorum verdict; replicas of logical units the quorum never
        # decided (still pending at shutdown, or permanently disagreeing
        # without a collusion guard) are excused as unpaid.
        self._check(
            set(self._granted) <= self._valid,
            "credit/validation mismatch: "
            f"overpaid={sorted(set(self._granted) - self._valid)}",
        )
        self._check(
            not (set(self._granted) & self._quorum_denied),
            "workunits both granted and quorum-denied: "
            f"{sorted(set(self._granted) & self._quorum_denied)}",
        )
        unpaid = self._valid - set(self._granted) - self._quorum_denied
        undecided = {
            wu
            for wu in unpaid
            if logical_id(wu) != wu and logical_id(wu) not in self._decided_logicals
        }
        self._check(
            unpaid == undecided,
            "credit/validation mismatch: "
            f"unpaid={sorted(unpaid - undecided)}",
        )
        # Pool merges are a subset of assimilations (equal without
        # replication; with a quorum only the canonical replica merges).
        self._check(
            self._pool_merged <= self._assimilated,
            "pool merged workunits never assimilated: "
            f"{sorted(self._pool_merged - self._assimilated)}",
        )
        # Every created workunit reached exactly one terminal fate.
        terminal = self._valid | self._exhausted | self._cancelled
        self._check(
            set(self._created) <= terminal,
            f"non-terminal workunits: {sorted(set(self._created) - terminal)}",
        )
        self._check(
            not (self._valid & self._exhausted)
            and not (self._valid & self._cancelled),
            "workunits with two terminal fates: "
            f"{sorted((self._valid & self._exhausted) | (self._valid & self._cancelled))}",
        )
        # Epoch spans all closed.
        self._check(
            self._open_epoch is None,
            f"epoch {self._open_epoch} never ended",
        )
        if runner is not None:
            self._verify_against_runner(runner, require_full_coverage)
        report = AuditReport(
            checks=self.checks,
            records_seen=self.records_seen,
            violations=list(self.violations),
        )
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s): "
                + "; ".join(self.violations[:5])
            )
        return report

    def _verify_against_runner(self, runner: Any, require_full_coverage: bool) -> None:
        from ..boinc.workunit import WorkunitState

        # Trace-derived fates agree with the scheduler's ground truth.
        for wu_id, wu in sorted(runner.server.scheduler._workunits.items()):
            expected = {
                WorkunitState.DONE: self._valid,
                WorkunitState.ERROR: self._exhausted,
                WorkunitState.CANCELLED: self._cancelled,
            }.get(wu.state)
            self._check(
                expected is not None,
                f"workunit {wu_id} left non-terminal ({wu.state.name})",
            )
            if expected is not None:
                self._check(
                    wu_id in expected,
                    f"workunit {wu_id} is {wu.state.name} in the scheduler "
                    "but the trace disagrees",
                )
        # Credit ledger conserves the per-grant stream.
        ledger_total = runner.server.credit.granted_total
        trace_total = sum(self._granted.values())
        self._check(
            abs(ledger_total - trace_total) < 1e-9,
            f"credit ledger total {ledger_total} != trace grants {trace_total}",
        )
        # RunResult counters agree with the trace record-for-record.
        counters = runner.result.counters
        if counters:
            self._check(
                counters["assimilations"] == len(self._pool_merged),
                f"counters[assimilations]={counters['assimilations']} != "
                f"{len(self._pool_merged)} pool merges in trace",
            )
            self._check(
                counters["timeouts"] == self.kind_counts["sched.timeout"],
                f"counters[timeouts]={counters['timeouts']} != "
                f"{self.kind_counts['sched.timeout']} in trace",
            )
            for counter, kind in (
                ("transfer_failures", "web.xfer_fail"),
                ("transfer_retries", "net.retry"),
                ("net_partition_blocks", "net.partition"),
                ("ps_crashes", "ps.crash"),
                ("ps_recoveries", "ps.recover"),
                ("kv_outage_blocks", "kv.outage"),
                ("kv_degraded_ops", "kv.degraded"),
                ("adv_tampered_uploads", "adv.tamper"),
                ("adv_inflated_claims", "adv.claim_inflate"),
                ("hosts_quarantined", "credit.quarantine"),
                ("quorums_failed", "quorum.failed"),
            ):
                if counter in counters:
                    self._check(
                        counters[counter] == self.kind_counts[kind],
                        f"counters[{counter}]={counters[counter]} != "
                        f"{self.kind_counts[kind]} {kind} records in trace",
                    )
            if "transfer_retries" in counters:
                # Every retried or abandoned transfer started as a failure.
                self._check(
                    counters["transfer_failures"] >= counters["transfer_retries"],
                    "more transfer retries than failures",
                )
        if require_full_coverage:
            done_by_epoch: dict[int, set[int]] = {}
            for wu_id in self._valid:
                epoch, shard = self._created[wu_id]
                done_by_epoch.setdefault(epoch, set()).add(shard)
            shards = set(range(runner.config.num_shards))
            for epoch, got in sorted(done_by_epoch.items()):
                self._check(
                    got == shards,
                    f"epoch {epoch} lost shards {sorted(shards - got)}",
                )
            self._check(
                len(done_by_epoch) == self._epochs_ended,
                f"{len(done_by_epoch)} epochs with DONE work but "
                f"{self._epochs_ended} epoch.end records",
            )
