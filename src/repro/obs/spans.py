"""Causal span tracing: workunit lineage reconstructed from the trace.

The simulation's hot path emits flat :class:`~repro.simulation.tracing.TraceRecord`
events.  This module rebuilds, entirely *offline* (zero hot-path cost —
nothing here attaches to the trace), the parent/child span tree of every
workunit replica:

    wu.generate -> sched.dispatch -> net.download -> client.train
        -> net.upload -> server.validate -> [quorum.wait]
        -> ps.queue -> ps.service -> params.publish

Causality keys are the ``wu=`` / ``client=`` ids already present on
trace records (PR 5 added them to every lifecycle emit site).  On top of
the span store:

* **lineages** — every physical workunit's attempts and terminal fate
  (``merged``/``assimilated``/``exhausted:*``/``cancelled``), with
  :meth:`SpanStore.lineage_problems` proving the reconstruction is
  orphan-free;
* **critical path** — per epoch, the gating lineage's hops tile the
  window from ``epoch.start`` to ``epoch.end`` exactly (gaps become
  labelled ``wait`` hops), so the hop durations sum to the run's
  wall-clock-to-target within float tolerance;
* **straggler & staleness attribution** — per-client hop-duration
  percentiles, and per-merge publish-version lag joined to the update
  rule's merge weight (alpha).

Reconstruction is a pure function of the recorded stream, so it works
identically on a live ``Trace`` and on a ``--trace-out`` JSONL replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from ..simulation.tracing import Trace, TraceRecord

__all__ = [
    "Span",
    "Attempt",
    "Lineage",
    "Hop",
    "CriticalPath",
    "SpanStore",
    "span_summary",
]

# Fates that mean the lineage finished its pipeline (result absorbed).
COMPLETE_FATES = ("merged", "assimilated")
# Hop names whose durations participate in straggler attribution.
CLIENT_HOPS = ("net.download", "client.train", "net.upload", "net.backoff")
# Tolerance for "these spans tile the window exactly".
_EPS = 1e-9


@dataclass
class Span:
    """One node of a lineage tree (or a non-lineage activity span)."""

    span_id: int
    name: str
    start: float
    end: float
    track: str
    wu: str | None = None
    client: str | None = None
    parent: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Attempt:
    """One scheduling attempt of a workunit on one client."""

    index: int
    client: str
    assigned_at: float
    span_id: int
    closed_at: float | None = None
    outcome: str | None = None  # success|timeout|client_error|invalid|cancelled|truncated
    uploaded_at: float | None = None
    train_started_at: float | None = None


@dataclass
class Lineage:
    """The full causal history of one physical workunit replica."""

    wu: str
    epoch: int
    shard: int
    created_at: float
    root: int  # span id of the wu.lifetime root span
    fate: str | None = None
    end: float | None = None
    attempts: list[Attempt] = field(default_factory=list)
    span_ids: list[int] = field(default_factory=list)
    merge: dict[str, Any] | None = None
    seq: int = 0  # index of the last record that touched this lineage

    @property
    def complete(self) -> bool:
        return self.fate in COMPLETE_FATES

    @property
    def terminated(self) -> bool:
        return self.fate is not None and not self.complete


@dataclass(frozen=True)
class Hop:
    """One segment of the critical path."""

    name: str
    start: float
    end: float
    wu: str | None = None
    client: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """Gating chain of hops from run start to the last epoch boundary."""

    hops: list[Hop]
    start_s: float
    end_s: float

    @property
    def total_s(self) -> float:
        return sum(h.duration for h in self.hops)

    def per_hop_totals(self) -> dict[str, float]:
        """Total seconds on the path attributed to each hop name."""
        totals: dict[str, float] = {}
        for hop in self.hops:
            totals[hop.name] = totals.get(hop.name, 0.0) + hop.duration
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))


class SpanStore:
    """Span tree + lineage index reconstructed from a record stream."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.lineages: dict[str, Lineage] = {}
        self.dropped = 0  # trace.dropped at build time: history is partial
        self.unhandled_kinds: set[str] = set()
        self.last_time = 0.0
        self._epoch_spans: dict[int, int] = {}  # epoch -> span id

    # -- construction -----------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "SpanStore":
        return cls.from_records(
            trace, dropped=trace.counters.get("trace.dropped", 0)
        )

    @classmethod
    def from_records(
        cls, records: Iterable[TraceRecord], dropped: int = 0
    ) -> "SpanStore":
        store = cls()
        store.dropped = dropped
        builder = _Builder(store)
        for seq, record in enumerate(records):
            builder.handle(seq, record)
        builder.finalize()
        return store

    # -- span helpers -----------------------------------------------------
    def span(self, span_id: int) -> Span:
        return self.spans[span_id]

    def children(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent == span_id]

    def lineage(self, wu_id: str) -> Lineage:
        return self.lineages[wu_id]

    def lineage_spans(self, wu_id: str) -> list[Span]:
        lineage = self.lineages[wu_id]
        return sorted(
            (self.spans[i] for i in lineage.span_ids),
            key=lambda s: (s.start, s.end, s.span_id),
        )

    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        return list(seen)

    # -- lineage integrity -------------------------------------------------
    def lineage_problems(self) -> list[str]:
        """Violations of the orphan-free reconstruction contract.

        Empty for any *complete* trace of a finished run.  A bounded trace
        (``dropped > 0``) legitimately loses history, so integrity is only
        asserted over unbounded traces.
        """
        if self.dropped:
            return []
        problems: list[str] = []
        for wu, lineage in self.lineages.items():
            if lineage.fate is None:
                problems.append(f"{wu}: no terminal fate (orphan lineage)")
            for attempt in lineage.attempts:
                if attempt.outcome is None:
                    problems.append(
                        f"{wu}: attempt #{attempt.index} on {attempt.client} "
                        "never closed"
                    )
            if lineage.complete and not any(
                a.outcome == "success" for a in lineage.attempts
            ):
                problems.append(f"{wu}: fate {lineage.fate} without a successful attempt")
            for span_id in lineage.span_ids:
                span = self.spans[span_id]
                if span_id != lineage.root and span.parent is None:
                    problems.append(f"{wu}: span {span.name} detached from tree")
        return problems

    def lineage_counts(self) -> dict[str, Any]:
        fates: dict[str, int] = {}
        for lineage in self.lineages.values():
            fates[lineage.fate or "open"] = fates.get(lineage.fate or "open", 0) + 1
        return {
            "total": len(self.lineages),
            "complete": sum(1 for v in self.lineages.values() if v.complete),
            "terminated": sum(1 for v in self.lineages.values() if v.terminated),
            "fates": dict(sorted(fates.items())),
        }

    # -- aggregation -------------------------------------------------------
    def hop_summary(self) -> dict[str, dict[str, float]]:
        """Per-hop-name duration statistics over every span in the store."""
        groups: dict[str, list[float]] = {}
        for span in self.spans:
            groups.setdefault(span.name, []).append(span.duration)
        summary: dict[str, dict[str, float]] = {}
        for name in sorted(groups):
            durations = np.asarray(groups[name])
            summary[name] = {
                "count": int(durations.size),
                "total_s": float(durations.sum()),
                "mean_s": float(durations.mean()),
                "p95_s": float(np.percentile(durations, 95)),
                "max_s": float(durations.max()),
            }
        return summary

    def client_percentiles(self) -> dict[str, dict[str, dict[str, float]]]:
        """Straggler attribution: per-client duration percentiles per hop."""
        groups: dict[str, dict[str, list[float]]] = {}
        for span in self.spans:
            if span.client is None or span.name not in CLIENT_HOPS:
                continue
            groups.setdefault(span.client, {}).setdefault(span.name, []).append(
                span.duration
            )
        out: dict[str, dict[str, dict[str, float]]] = {}
        for client in sorted(groups):
            out[client] = {}
            for hop in sorted(groups[client]):
                durations = np.asarray(groups[client][hop])
                out[client][hop] = {
                    "count": int(durations.size),
                    "p50_s": float(np.percentile(durations, 50)),
                    "p95_s": float(np.percentile(durations, 95)),
                    "max_s": float(durations.max()),
                }
        return out

    def merges(self) -> list[dict[str, Any]]:
        """Per-merge staleness attribution, in assimilation order."""
        rows = [
            lineage.merge
            for lineage in sorted(self.lineages.values(), key=lambda v: v.seq)
            if lineage.merge is not None
        ]
        return rows

    def staleness_summary(self) -> dict[str, Any]:
        """Publish-version lag per merge, joined to the rule's alpha."""
        rows = self.merges()
        lags = [r["staleness"] for r in rows if r.get("staleness") is not None]
        by_client: dict[str, list[int]] = {}
        for row in rows:
            if row.get("staleness") is not None and row.get("client"):
                by_client.setdefault(row["client"], []).append(row["staleness"])
        return {
            "merges": len(rows),
            "mean": float(np.mean(lags)) if lags else 0.0,
            "max": int(max(lags)) if lags else 0,
            "by_client": {
                client: {
                    "merges": len(vals),
                    "mean": float(np.mean(vals)),
                    "max": int(max(vals)),
                }
                for client, vals in sorted(by_client.items())
            },
        }

    # -- critical path ------------------------------------------------------
    def critical_path(self) -> CriticalPath:
        """The chain of spans bounding the run's wall clock.

        Each epoch window ``[epoch.start, epoch.end]`` is gated by the
        lineage whose last event closed the epoch; its spans tile the
        window (uncovered stretches become ``wait`` hops, a gating
        lineage minted mid-epoch contributes an ``epoch.other_work``
        prefix).  Windows are contiguous by construction — the next
        ``epoch.start`` fires at the previous ``epoch.end``'s timestamp —
        so the hop durations sum to ``end_s - start_s`` exactly.
        """
        hops: list[Hop] = []
        epoch_spans = sorted(
            (self.spans[i] for i in self._epoch_spans.values()),
            key=lambda s: s.start,
        )
        warm = next((s for s in self.spans if s.name == "warmstart"), None)
        if warm is not None:
            hops.append(Hop("warmstart", warm.start, warm.end))
        for epoch_span in epoch_spans:
            hops.extend(self._epoch_hops(epoch_span))
        if not hops:
            return CriticalPath([], 0.0, 0.0)
        return CriticalPath(hops, hops[0].start, hops[-1].end)

    def _epoch_hops(self, epoch_span: Span) -> list[Hop]:
        window_start, window_end = epoch_span.start, epoch_span.end
        epoch = epoch_span.attrs.get("epoch")
        candidates = [
            v
            for v in self.lineages.values()
            if v.epoch == epoch and v.end is not None and v.end <= window_end + _EPS
        ]
        if not candidates:
            return [Hop("wait", window_start, window_end)]
        gating = max(candidates, key=lambda v: (v.end, v.seq))
        hops: list[Hop] = []
        cursor = window_start
        if gating.created_at > window_start + _EPS:
            # The gating workunit was minted mid-epoch (barrier reissue):
            # until then the epoch was bounded by its other subtasks.
            hops.append(Hop("epoch.other_work", window_start, gating.created_at))
            cursor = gating.created_at
        for span in self.lineage_spans(gating.wu):
            if span.span_id == gating.root or span.name == "wu.attempt":
                continue  # container spans; their children tile the window
            start = max(span.start, cursor)
            end = min(span.end, window_end)
            if end < cursor - _EPS or start >= window_end - _EPS and span.end > window_end:
                continue
            if start > cursor + _EPS:
                hops.append(
                    Hop("wait", cursor, start, wu=gating.wu, client=span.client)
                )
                cursor = start
            if end > cursor + _EPS or (
                end >= cursor - _EPS and span.duration == 0.0
            ):
                hops.append(
                    Hop(span.name, cursor, max(end, cursor), wu=gating.wu, client=span.client)
                )
                cursor = max(end, cursor)
        if cursor < window_end - _EPS:
            hops.append(Hop("wait", cursor, window_end, wu=gating.wu))
        return hops

    # -- drill-down ---------------------------------------------------------
    def describe_lineage(self, wu_id: str) -> list[str]:
        """Human-readable span tree for one workunit (CLI ``--wu``)."""
        lineage = self.lineages[wu_id]
        lines = [
            f"workunit {wu_id}  epoch={lineage.epoch + 1} shard={lineage.shard} "
            f"fate={lineage.fate or 'open'}",
            f"  created {lineage.created_at:.3f}s  ended "
            f"{lineage.end if lineage.end is not None else float('nan'):.3f}s  "
            f"attempts={len(lineage.attempts)}",
        ]
        for span in self.lineage_spans(wu_id):
            if span.span_id == lineage.root:
                continue
            depth = 0
            parent = span.parent
            while parent is not None and parent != lineage.root:
                depth += 1
                parent = self.spans[parent].parent
            extras = " ".join(
                f"{k}={v}" for k, v in span.attrs.items() if k not in ("index",)
            )
            lines.append(
                f"  {'  ' * depth}{span.name:<18} "
                f"[{span.start:>10.3f} .. {span.end:>10.3f}] "
                f"{span.duration:>9.3f}s  {span.track}"
                + (f"  {extras}" if extras else "")
            )
        return lines


# ---------------------------------------------------------------------------
# Builder: one pass over the record stream
# ---------------------------------------------------------------------------


class _Builder:
    def __init__(self, store: SpanStore) -> None:
        self.store = store
        # (wu, client) -> (time, direction, reason) of an in-flight failed
        # transfer; closed by the matching net.retry / net.gave_up.
        self._pending_fault: dict[tuple[str, str], tuple[float, str, str]] = {}
        # wu -> publish version its merge produced (params.publish precedes
        # ps.assimilated within the same _finish call).
        self._publish_version: dict[str, int] = {}
        self._warmstart_span: int | None = None

    # -- span plumbing -----------------------------------------------------
    def _add(
        self,
        name: str,
        start: float,
        end: float,
        track: str,
        wu: str | None = None,
        client: str | None = None,
        parent: int | None = None,
        **attrs: Any,
    ) -> Span:
        span = Span(
            span_id=len(self.store.spans),
            name=name,
            start=start,
            end=end,
            track=track,
            wu=wu,
            client=client,
            parent=parent,
            attrs=attrs,
        )
        self.store.spans.append(span)
        if wu is not None and wu in self.store.lineages:
            self.store.lineages[wu].span_ids.append(span.span_id)
        return span

    def _lineage(self, rec: TraceRecord) -> Lineage | None:
        wu = rec.get("wu") or rec.get("canonical")
        if not wu:
            return None
        return self.store.lineages.get(wu)

    @staticmethod
    def _attempt_for(lineage: Lineage, client: str | None) -> Attempt | None:
        for attempt in reversed(lineage.attempts):
            if client is None or attempt.client == client:
                return attempt
        return None

    def _close_attempt(
        self, lineage: Lineage, client: str | None, at: float, outcome: str
    ) -> Attempt | None:
        attempt = self._attempt_for(lineage, client)
        if attempt is None or attempt.outcome is not None:
            return attempt
        attempt.closed_at = at
        attempt.outcome = outcome
        span = self.store.spans[attempt.span_id]
        span.end = at
        span.attrs["outcome"] = outcome
        return attempt

    # -- dispatch ----------------------------------------------------------
    def handle(self, seq: int, rec: TraceRecord) -> None:
        self.store.last_time = max(self.store.last_time, rec.time)
        lineage = self._lineage(rec)
        if lineage is not None:
            lineage.seq = seq
        handler = getattr(self, "_on_" + rec.kind.replace(".", "_"), None)
        if handler is None:
            self.store.unhandled_kinds.add(rec.kind)
            return
        handler(rec, lineage)

    def finalize(self) -> None:
        for lineage in self.store.lineages.values():
            end = lineage.end if lineage.end is not None else self.store.last_time
            for attempt in lineage.attempts:
                if attempt.outcome is None and self.store.dropped == 0 and (
                    lineage.fate is None
                ):
                    # Run truncated mid-attempt (partial trace of a live
                    # run): close honestly rather than leave spans open.
                    attempt.outcome = "truncated"
                    attempt.closed_at = end
                    span = self.store.spans[attempt.span_id]
                    span.end = end
                    span.attrs["outcome"] = "truncated"
            root = self.store.spans[lineage.root]
            root.end = end
            root.attrs["fate"] = lineage.fate or "open"
        for span_id in self.store._epoch_spans.values():
            span = self.store.spans[span_id]
            if span.end < span.start:
                span.end = self.store.last_time

    # -- lineage lifecycle handlers -----------------------------------------
    def _on_sched_created(self, rec: TraceRecord, _: Lineage | None) -> None:
        wu = rec["wu"]
        root = self._add(
            "wu.lifetime", rec.time, rec.time - 1.0, "server", wu=wu
        )  # end patched in finalize (or by the fate handlers)
        lineage = Lineage(
            wu=wu,
            epoch=rec.get("epoch", 0),
            shard=rec.get("shard", -1),
            created_at=rec.time,
            root=root.span_id,
        )
        self.store.lineages[wu] = lineage
        lineage.span_ids.append(root.span_id)
        self._add(
            "wu.generate", rec.time, rec.time, "server", wu=wu, parent=root.span_id
        )
        lineage.ready_since = rec.time  # type: ignore[attr-defined]

    def _on_sched_assign(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        ready = getattr(lineage, "ready_since", lineage.created_at)
        self._add(
            "sched.dispatch",
            ready,
            rec.time,
            "server",
            wu=lineage.wu,
            parent=lineage.root,
        )
        client = rec.get("client", "")
        span = self._add(
            "wu.attempt",
            rec.time,
            rec.time,  # end patched when the attempt closes
            client or "server",
            wu=lineage.wu,
            client=client,
            parent=lineage.root,
            index=rec.get("attempt", len(lineage.attempts)),
        )
        lineage.attempts.append(
            Attempt(
                index=rec.get("attempt", len(lineage.attempts)),
                client=client,
                assigned_at=rec.time,
                span_id=span.span_id,
            )
        )

    def _attempt_child(
        self,
        rec: TraceRecord,
        lineage: Lineage,
        name: str,
        start: float,
        end: float,
        **attrs: Any,
    ) -> Span | None:
        client = rec.get("client")
        attempt = self._attempt_for(lineage, client)
        parent = attempt.span_id if attempt is not None else lineage.root
        if attempt is not None and attempt.outcome is not None:
            attrs.setdefault("stale", True)
        return self._add(
            name,
            start,
            end,
            client or "server",
            wu=lineage.wu,
            client=client,
            parent=parent,
            **attrs,
        )

    def _on_web_download(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return  # setup transfers carry no workunit
        self._attempt_child(
            rec, lineage, "net.download", rec.time, rec.time + rec.get("seconds", 0.0)
        )

    def _on_web_upload(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        self._attempt_child(
            rec,
            lineage,
            "net.upload",
            rec.time,
            rec.time + rec.get("seconds", 0.0),
            nbytes=rec.get("nbytes"),
        )

    def _on_web_xfer_fail(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        wu, client = rec.get("wu", ""), rec.get("client", "")
        if wu:
            self._pending_fault[(wu, client)] = (
                rec.time,
                rec.get("direction", ""),
                rec.get("reason", ""),
            )

    def _close_fault(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        """A failed transfer's detection delay ends at this retry/gave-up."""
        wu, client = rec.get("wu", ""), rec.get("client", "")
        pending = self._pending_fault.pop((wu, client), None)
        if pending is None or lineage is None:
            return
        failed_at, direction, reason = pending
        self._attempt_child(
            rec,
            lineage,
            "net.fault",
            failed_at,
            rec.time,
            direction=direction,
            reason=reason,
        )

    def _on_net_retry(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        self._close_fault(rec, lineage)
        if lineage is None:
            return
        self._attempt_child(
            rec,
            lineage,
            "net.backoff",
            rec.time,
            rec.time + rec.get("backoff_s", 0.0),
            phase=rec.get("phase"),
            reason=rec.get("reason"),
        )

    def _on_net_gave_up(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        self._close_fault(rec, lineage)
        if lineage is None:
            return
        self._attempt_child(
            rec, lineage, "net.gave_up", rec.time, rec.time, phase=rec.get("phase")
        )

    def _on_net_partition(self, rec: TraceRecord, _: Lineage | None) -> None:
        client = rec.get("client", "")
        self._add(
            "net.partition",
            rec.time,
            rec.time,
            client or "server",
            client=client,
            until=rec.get("until"),
        )

    def _on_client_train_start(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        attempt = self._attempt_for(lineage, rec.get("client"))
        if attempt is not None:
            attempt.train_started_at = rec.time

    def _on_client_train_done(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        attempt = self._attempt_for(lineage, rec.get("client"))
        start = (
            attempt.train_started_at
            if attempt is not None and attempt.train_started_at is not None
            else rec.time
        )
        self._attempt_child(rec, lineage, "client.train", start, rec.time)

    def _on_client_uploaded(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        attempt = self._attempt_for(lineage, rec.get("client"))
        if attempt is not None:
            attempt.uploaded_at = rec.time

    def _on_client_turnaround(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        attempt = self._attempt_for(lineage, rec.get("client"))
        if attempt is not None:
            span = self.store.spans[attempt.span_id]
            span.attrs["turnaround_s"] = rec.get("seconds")

    def _on_client_terminated(self, rec: TraceRecord, _: Lineage | None) -> None:
        client = rec.get("client", "")
        self._add("client.terminated", rec.time, rec.time, client or "server", client=client)

    def _on_sched_stale_result(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        self._attempt_child(rec, lineage, "sched.stale_result", rec.time, rec.time)

    def _on_sched_heartbeat(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        attempt = self._attempt_for(lineage, rec.get("client"))
        if attempt is not None:
            span = self.store.spans[attempt.span_id]
            span.attrs["heartbeats"] = span.attrs.get("heartbeats", 0) + 1

    def _on_server_result_valid(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        client = rec.get("host")
        attempt = self._attempt_for(lineage, client)
        if attempt is not None and attempt.outcome is None:
            attempt.closed_at = rec.time
            attempt.outcome = "success"
            span = self.store.spans[attempt.span_id]
            span.end = rec.time
            span.attrs["outcome"] = "success"
        start = (
            attempt.uploaded_at
            if attempt is not None and attempt.uploaded_at is not None
            else rec.time
        )
        self._add(
            "server.validate",
            start,
            rec.time,
            "server",
            wu=lineage.wu,
            client=client,
            parent=lineage.root,
        )

    def _on_server_result_invalid(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        self._close_attempt(lineage, None, rec.time, "invalid")
        self._add(
            "server.validate",
            rec.time,
            rec.time,
            "server",
            wu=lineage.wu,
            parent=lineage.root,
            ok=False,
            reason=rec.get("reason"),
            code=rec.get("code"),
        )
        lineage.ready_since = rec.time  # type: ignore[attr-defined]

    def _on_sched_timeout(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        self._close_attempt(lineage, rec.get("client"), rec.time, "timeout")
        lineage.ready_since = rec.time  # type: ignore[attr-defined]

    def _on_sched_client_error(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        self._close_attempt(lineage, rec.get("client"), rec.time, "client_error")
        lineage.ready_since = rec.time  # type: ignore[attr-defined]

    def _on_sched_cancelled(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        self._close_attempt(lineage, None, rec.time, "cancelled")
        if lineage.fate is None:
            lineage.fate = "cancelled"
            lineage.end = rec.time
            self.store.spans[lineage.root].end = rec.time

    def _on_sched_exhausted(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        lineage.fate = f"exhausted:{rec.get('via', 'unknown')}"
        lineage.end = rec.time
        self.store.spans[lineage.root].end = rec.time

    def _on_quorum_reached(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        # ``lineage`` resolves via the canonical replica id.
        if lineage is None:
            self._add(
                "quorum.reached", rec.time, rec.time, "server",
                logical=rec.get("logical"),
            )
            return
        success = next(
            (a for a in lineage.attempts if a.outcome == "success"), None
        )
        if success is not None and success.closed_at is not None and rec.time > success.closed_at:
            self._add(
                "quorum.wait",
                success.closed_at,
                rec.time,
                "server",
                wu=lineage.wu,
                parent=lineage.root,
                replicas_seen=rec.get("replicas_seen"),
            )
        self._add(
            "quorum.reached",
            rec.time,
            rec.time,
            "server",
            wu=lineage.wu,
            parent=lineage.root,
            logical=rec.get("logical"),
        )

    def _on_ps_assimilated(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        queue_wait = rec.get("queue_wait", 0.0)
        service = rec.get("service", 0.0)
        enqueued = rec.time - service - queue_wait
        started = rec.time - service
        wu = rec.get("wu")
        parent = lineage.root if lineage is not None else None
        self._add(
            "ps.queue", enqueued, started, "ps", wu=wu, parent=parent,
            client=rec.get("client"),
        )
        self._add(
            "ps.service", started, rec.time, "ps", wu=wu, parent=parent,
            client=rec.get("client"), accuracy=rec.get("accuracy"),
        )
        if lineage is None:
            return
        version = self._publish_version.get(wu)
        base = rec.get("base_version")
        lineage.merge = {
            "wu": wu,
            "client": rec.get("client"),
            "epoch": rec.get("epoch"),
            "rule": rec.get("rule"),
            "alpha": rec.get("alpha"),
            "base_version": base,
            "version": version,
            "staleness": (
                version - base if version is not None and base is not None else None
            ),
            "queue_wait_s": queue_wait,
            "service_s": service,
            "accuracy": rec.get("accuracy"),
        }
        lineage.fate = "merged"
        lineage.end = max(lineage.end or rec.time, rec.time)
        self.store.spans[lineage.root].end = lineage.end

    def _on_server_assimilated(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        if lineage is None:
            return
        if lineage.fate is None or lineage.fate == "assimilated":
            lineage.fate = lineage.fate or "assimilated"
        lineage.end = max(lineage.end or rec.time, rec.time)
        self.store.spans[lineage.root].end = lineage.end

    def _on_params_publish(self, rec: TraceRecord, lineage: Lineage | None) -> None:
        wu = rec.get("wu")
        if wu:
            self._publish_version[wu] = rec.get("version")
        self._add(
            "params.publish",
            rec.time,
            rec.time,
            "server",
            wu=wu,
            parent=lineage.root if lineage is not None else None,
            version=rec.get("version"),
        )

    # -- non-lineage activity ------------------------------------------------
    def _on_epoch_start(self, rec: TraceRecord, _: Lineage | None) -> None:
        span = self._add(
            "epoch", rec.time, rec.time - 1.0, "run", epoch=rec.get("epoch")
        )  # end patched by epoch.end (or finalize)
        self.store._epoch_spans[rec.get("epoch")] = span.span_id

    def _on_epoch_end(self, rec: TraceRecord, _: Lineage | None) -> None:
        span_id = self.store._epoch_spans.get(rec.get("epoch"))
        if span_id is not None:
            span = self.store.spans[span_id]
            span.end = rec.time
            span.attrs["accuracy"] = rec.get("accuracy")

    def _on_epoch_barrier_stall(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._add(
            "epoch.barrier_stall",
            rec.time,
            rec.time,
            "run",
            epoch=rec.get("epoch"),
            missing=rec.get("missing"),
        )

    def _on_warmstart_done(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._add("warmstart", 0.0, rec.time, "run", passes=rec.get("passes"))

    def _kv_span(self, rec: TraceRecord, name: str, start: float, end: float) -> None:
        self._add(
            name,
            start,
            end,
            f"kv:{rec.get('store', '?')}",
            key=rec.get("key"),
        )

    def _on_kv_read(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._kv_span(rec, "kv.read", rec.time, rec.time + rec.get("latency", 0.0))

    def _on_kv_write(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._kv_span(rec, "kv.write", rec.time, rec.time + rec.get("latency", 0.0))

    def _on_kv_update(self, rec: TraceRecord, _: Lineage | None) -> None:
        # Emitted at commit time; latency covers the read-modify-write.
        self._kv_span(rec, "kv.update", rec.time - rec.get("latency", 0.0), rec.time)

    def _on_kv_outage(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._add(
            "kv.outage",
            rec.time,
            rec.time + rec.get("blocked_s", 0.0),
            f"kv:{rec.get('store', '?')}",
            op=rec.get("op"),
        )

    def _on_kv_degraded(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._add(
            "kv.degraded",
            rec.time,
            rec.time,
            f"kv:{rec.get('store', '?')}",
            op=rec.get("op"),
            factor=rec.get("factor"),
        )

    def _on_kv_txn_abort(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._kv_span(rec, "kv.txn_abort", rec.time, rec.time)

    def _on_kv_lost_update(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._kv_span(rec, "kv.lost_update", rec.time, rec.time)

    def _ps_marker(self, rec: TraceRecord, name: str) -> None:
        wu = rec.get("wu")
        lineage = self.store.lineages.get(wu) if wu else None
        self._add(
            name,
            rec.time,
            rec.time,
            "ps",
            wu=wu,
            parent=lineage.root if lineage is not None else None,
            **{k: v for k, v in rec.fields.items() if k != "wu"},
        )

    def _on_ps_crash(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._ps_marker(rec, "ps.crash")

    def _on_ps_recover(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._ps_marker(rec, "ps.recover")

    def _on_ps_restore(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._ps_marker(rec, "ps.restore")

    def _on_ps_scale_up(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._ps_marker(rec, "ps.scale_up")

    def _on_ps_scale_down(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._ps_marker(rec, "ps.scale_down")

    def _on_fleet_preemption(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._add(
            "fleet.preemption", rec.time, rec.time, "run", client=rec.get("client")
        )

    def _on_fleet_volunteer_joined(self, rec: TraceRecord, _: Lineage | None) -> None:
        self._add(
            "fleet.volunteer_joined", rec.time, rec.time, "run",
            client=rec.get("client"),
        )

    def _on_fault_corrupt_upload(self, rec: TraceRecord, _: Lineage | None) -> None:
        client = rec.get("client", "")
        self._add(
            "fault.corrupt_upload", rec.time, rec.time, client or "run", client=client
        )

    # Kinds consumed elsewhere in the pipeline (no span of their own).
    def _skip(self, rec: TraceRecord, _: Lineage | None) -> None:
        return

    _on_validator_checked = _skip
    _on_credit_grant = _skip
    _on_credit_deny = _skip
    # Fleet-scale work-fetch chatter and plane coordination: high-volume /
    # run-level records with no per-workunit span of their own.
    _on_sched_ping = _skip
    _on_sched_sleep_hint = _skip
    _on_sched_stale_heartbeat = _skip
    _on_plane_cutover = _skip
    # Byzantine fabric: per-upload tampering and the defense verdicts ride
    # on the attempt/quorum spans that already exist.
    _on_adv_tamper = _skip
    _on_adv_claim_inflate = _skip
    _on_adv_sybil_joined = _skip
    _on_credit_quarantine = _skip
    _on_quorum_failed = _skip
    # Codec plane: per-transfer pricing records; the bytes they explain
    # already ride on the web.download / web.upload transfer spans.
    _on_net_encode = _skip
    _on_net_decode = _skip


# ---------------------------------------------------------------------------
# Telemetry section
# ---------------------------------------------------------------------------


def _round_floats(value: Any, digits: int = 6) -> Any:
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {k: _round_floats(v, digits) for k, v in value.items()}
    if isinstance(value, list):
        return [_round_floats(v, digits) for v in value]
    return value


def span_summary(trace: Trace | Iterable[TraceRecord]) -> dict[str, Any]:
    """The ``spans`` telemetry section: lineage + hop + path + attribution.

    Pure read of the recorded stream — safe to call after any run, and
    excluded from the telemetry digest (observability sections never
    affect determinism fingerprints).
    """
    store = (
        SpanStore.from_trace(trace)
        if isinstance(trace, Trace)
        else SpanStore.from_records(trace)
    )
    path = store.critical_path()
    payload = {
        "lineages": store.lineage_counts(),
        "lineage_problems": store.lineage_problems(),
        "hops": store.hop_summary(),
        "critical_path": {
            "start_s": path.start_s,
            "end_s": path.end_s,
            "total_s": path.total_s,
            "hop_count": len(path.hops),
            "per_hop_totals": path.per_hop_totals(),
        },
        "stragglers": store.client_percentiles(),
        "staleness": store.staleness_summary(),
        "dropped_records": store.dropped,
    }
    return _round_floats(payload)
