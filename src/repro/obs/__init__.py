"""repro.obs — run observability: metrics, profiling, auditing, telemetry.

Four cooperating pieces, all optional and all zero-cost when disabled:

* :mod:`.metrics` — counters / gauges / exact-sample histograms /
  sim-clock timers in a get-or-create registry;
* :mod:`.collector` — a trace observer mapping the substrate's event
  stream onto those instruments;
* :mod:`.audit` — the always-on invariant auditor asserting conservation
  laws over the same stream;
* :mod:`.profiler` — wall-clock attribution per engine event label;
* :mod:`.telemetry` — the schema-versioned JSON export with its
  determinism digest;
* :mod:`.spans` — offline causal-span reconstruction (workunit lineage,
  critical path, straggler/staleness attribution) over the recorded
  trace, with :mod:`.trace_io` JSONL persistence and
  :mod:`.trace_export` Chrome/Perfetto trace-event output.

``RunObservability`` (in :mod:`.runtime`) bundles them for a run.
"""

from .audit import AuditReport, InvariantAuditor
from .collector import MetricsCollector
from .metrics import (
    NULL_TIMER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .profiler import SimProfiler
from .runtime import OBSERVABILITY_OFF, ObservabilityConfig, RunObservability
from .spans import CriticalPath, Lineage, Span, SpanStore, span_summary
from .trace_export import (
    build_perfetto_trace,
    validate_perfetto,
    write_perfetto_trace,
)
from .trace_io import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    iter_trace_jsonl,
    read_trace_jsonl,
    write_trace_jsonl,
)
from .telemetry import (
    DIGEST_FIELDS,
    TELEMETRY_SCHEMA,
    TELEMETRY_SWEEP_SCHEMA,
    TELEMETRY_VERSION,
    build_run_telemetry,
    build_sweep_telemetry,
    read_telemetry,
    run_digest,
    write_telemetry,
)

__all__ = [
    "AuditReport",
    "InvariantAuditor",
    "MetricsCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NULL_TIMER",
    "SimProfiler",
    "ObservabilityConfig",
    "OBSERVABILITY_OFF",
    "RunObservability",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SWEEP_SCHEMA",
    "TELEMETRY_VERSION",
    "DIGEST_FIELDS",
    "build_run_telemetry",
    "build_sweep_telemetry",
    "read_telemetry",
    "run_digest",
    "write_telemetry",
    "Span",
    "Lineage",
    "CriticalPath",
    "SpanStore",
    "span_summary",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "iter_trace_jsonl",
    "build_perfetto_trace",
    "write_perfetto_trace",
    "validate_perfetto",
]
