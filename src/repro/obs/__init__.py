"""repro.obs — run observability: metrics, profiling, auditing, telemetry.

Four cooperating pieces, all optional and all zero-cost when disabled:

* :mod:`.metrics` — counters / gauges / exact-sample histograms /
  sim-clock timers in a get-or-create registry;
* :mod:`.collector` — a trace observer mapping the substrate's event
  stream onto those instruments;
* :mod:`.audit` — the always-on invariant auditor asserting conservation
  laws over the same stream;
* :mod:`.profiler` — wall-clock attribution per engine event label;
* :mod:`.telemetry` — the schema-versioned JSON export with its
  determinism digest.

``RunObservability`` (in :mod:`.runtime`) bundles them for a run.
"""

from .audit import AuditReport, InvariantAuditor
from .collector import MetricsCollector
from .metrics import (
    NULL_TIMER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .profiler import SimProfiler
from .runtime import OBSERVABILITY_OFF, ObservabilityConfig, RunObservability
from .telemetry import (
    DIGEST_FIELDS,
    TELEMETRY_SCHEMA,
    TELEMETRY_SWEEP_SCHEMA,
    TELEMETRY_VERSION,
    build_run_telemetry,
    build_sweep_telemetry,
    read_telemetry,
    run_digest,
    write_telemetry,
)

__all__ = [
    "AuditReport",
    "InvariantAuditor",
    "MetricsCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NULL_TIMER",
    "SimProfiler",
    "ObservabilityConfig",
    "OBSERVABILITY_OFF",
    "RunObservability",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SWEEP_SCHEMA",
    "TELEMETRY_VERSION",
    "DIGEST_FIELDS",
    "build_run_telemetry",
    "build_sweep_telemetry",
    "read_telemetry",
    "run_digest",
    "write_telemetry",
]
