"""Per-run observability wiring: config + the bundle a runner carries.

``ObservabilityConfig`` decides which of the three observers exist;
``RunObservability`` instantiates and attaches them to a run's trace and
simulator.  The default is metrics + audit on (the "always-on invariant
auditor" contract) with the wall-clock profiler off; ``OBSERVABILITY_OFF``
disables everything, restoring the exact legacy dispatch paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..simulation.engine import Simulator
from ..simulation.tracing import Trace
from .audit import AuditReport, InvariantAuditor
from .collector import MetricsCollector
from .metrics import NULL_TIMER, MetricsRegistry, Timer
from .profiler import SimProfiler

__all__ = ["ObservabilityConfig", "OBSERVABILITY_OFF", "RunObservability"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Which observers to attach to a run.

    ``spans`` gates the *offline* causal-span reconstruction
    (``repro.obs.spans``) run over the recorded trace at telemetry time;
    it attaches nothing to the hot path, so toggling it cannot perturb
    the simulation.  ``trace_max_records`` bounds the trace's in-memory
    record window (ring/drop policy, ``trace.dropped`` counter); None
    keeps the unbounded default.
    """

    metrics: bool = True
    audit: bool = True
    profile: bool = False
    strict_audit: bool = False
    spans: bool = True
    trace_max_records: int | None = None


OBSERVABILITY_OFF = ObservabilityConfig(
    metrics=False, audit=False, profile=False, spans=False
)


class RunObservability:
    """The observability bundle one DistributedRunner owns."""

    def __init__(
        self, config: ObservabilityConfig, trace: Trace, sim: Simulator
    ) -> None:
        self.config = config
        self.registry: MetricsRegistry | None = None
        self.collector: MetricsCollector | None = None
        self.auditor: InvariantAuditor | None = None
        self.profiler: SimProfiler | None = None
        self.report: AuditReport | None = None
        if config.metrics:
            self.registry = MetricsRegistry(clock=lambda: sim.now)
            self.collector = MetricsCollector(self.registry)
            trace.attach(self.collector)
        if config.audit:
            self.auditor = InvariantAuditor(strict=config.strict_audit)
            trace.attach(self.auditor)
        if config.profile:
            self.profiler = SimProfiler()
            sim.profiler = self.profiler

    def timer(self, name: str) -> "Timer | Any":
        """A named sim-clock timer, or an inert one when metrics are off."""
        if self.registry is None:
            return NULL_TIMER
        return self.registry.timer(name)

    def finalize(self, runner: Any, *, require_full_coverage: bool = False) -> None:
        """End-of-run audit pass; raises InvariantViolation on failure."""
        if self.auditor is not None:
            self.report = self.auditor.verify(
                runner, require_full_coverage=require_full_coverage
            )
