"""Metrics primitives: counters, gauges, histograms, and sim-clock timers.

The registry is the single container a run carries around; components
obtain named instruments lazily (`get-or-create`) so instrumented code
never has to pre-declare what it measures.  Design choices that the test
layer leans on:

* **Histograms keep every sample.**  Runs here are discrete-event
  simulations with at most a few hundred thousand observations, so exact
  storage is affordable — and it buys exact quantiles (bit-identical to
  ``np.quantile``) and a merge operation that is plain concatenation,
  hence associative.  Both properties are pinned by Hypothesis tests.
* **Timers run on the simulated clock**, not wall-clock: they answer
  "where does *simulated* time go", which is what the paper's Fig. 2
  epoch-latency measurements are about.  Wall-clock attribution lives in
  :mod:`repro.obs.profiler` instead.
* **Timer nesting is an explicit stack** shared through the registry, so
  a parent timer can report *exclusive* time (its total minus time spent
  in nested child spans).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NULL_TIMER",
]

QUANTILE_POINTS = (0.5, 0.95, 0.99)


class Counter:
    """Monotonically increasing integer-ish counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-write-wins scalar that also tracks its min/max envelope."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.updates += 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "updates": self.updates,
        }


class Histogram:
    """Exact-sample distribution: stores all observations.

    Quantiles are computed with ``np.quantile`` over the raw samples, so
    they match the NumPy reference by construction, and merging two
    histograms is sample concatenation — associative and lossless.
    """

    __slots__ = ("name", "_samples")

    def __init__(self, name: str, samples: list[float] | None = None) -> None:
        self.name = name
        self._samples: list[float] = list(samples) if samples else []

    # -- recording ------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if not np.isfinite(value):
            raise ObservabilityError(
                f"histogram {self.name!r} rejects non-finite sample {value!r}"
            )
        self._samples.append(value)

    # -- statistics -----------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return float(sum(self._samples))

    @property
    def mean(self) -> float:
        self._require_samples("mean")
        return self.total / len(self._samples)

    @property
    def min(self) -> float:
        self._require_samples("min")
        return float(min(self._samples))

    @property
    def max(self) -> float:
        self._require_samples("max")
        return float(max(self._samples))

    def quantile(self, q: float) -> float:
        """Exact quantile; matches ``np.quantile(samples, q)`` bit-for-bit."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        self._require_samples(f"quantile({q})")
        return float(np.quantile(np.asarray(self._samples, dtype=np.float64), q))

    def percentiles(self) -> dict[str, float]:
        """The dashboard's standard trio: p50 / p95 / p99."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in QUANTILE_POINTS}

    def samples(self) -> tuple[float, ...]:
        """Immutable view of the raw observations, in insertion order."""
        return tuple(self._samples)

    def merge(self, other: "Histogram") -> "Histogram":
        """Lossless combination of two histograms (sample concatenation)."""
        return Histogram(self.name, self._samples + other._samples)

    def snapshot(self) -> dict[str, Any]:
        if not self._samples:
            return {"count": 0}
        out: dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        out.update(self.percentiles())
        return out

    def _require_samples(self, what: str) -> None:
        if not self._samples:
            raise ObservabilityError(
                f"histogram {self.name!r} has no samples; {what} is undefined"
            )


class Timer:
    """Named span timer on the registry's clock with nesting awareness.

    ``start()``/``stop()`` must bracket like a stack (enforced — the
    Hypothesis nesting tests rely on the error).  ``total_s`` is inclusive
    time; ``exclusive_s`` subtracts time spent in spans nested inside this
    one, so a set of sibling timers under one parent decomposes the
    parent's total without double counting.
    """

    __slots__ = ("name", "count", "total_s", "exclusive_s", "_registry", "_durations")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.exclusive_s = 0.0
        self._registry = registry
        self._durations = Histogram(f"{name}.duration_s")

    def start(self) -> None:
        self._registry._push_span(self)

    def stop(self) -> None:
        self._registry._pop_span(self)

    def time(self) -> "_TimerContext":
        """``with timer.time(): ...`` sugar over start/stop."""
        return _TimerContext(self)

    def _record(self, inclusive_s: float, child_s: float) -> None:
        self.count += 1
        self.total_s += inclusive_s
        self.exclusive_s += inclusive_s - child_s
        self._durations.observe(inclusive_s)

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "total_s": self.total_s,
            "exclusive_s": self.exclusive_s,
        }
        if self._durations.count:
            out.update(self._durations.percentiles())
        return out


class _TimerContext:
    __slots__ = ("_timer",)

    def __init__(self, timer: Timer) -> None:
        self._timer = timer

    def __enter__(self) -> Timer:
        self._timer.start()
        return self._timer

    def __exit__(self, *exc: Any) -> None:
        self._timer.stop()


class _NullTimer:
    """Inert stand-in used when metrics are disabled; supports the full API."""

    __slots__ = ()

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def time(self) -> "_NullTimer":
        return self

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NULL_TIMER = _NullTimer()


class _Span:
    __slots__ = ("timer", "start", "child_s")

    def __init__(self, timer: Timer, start: float) -> None:
        self.timer = timer
        self.start = start
        self.child_s = 0.0


class MetricsRegistry:
    """Get-or-create container for all instruments of one run.

    A name identifies exactly one instrument; asking for the same name as
    a different type is a programming error and raises.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._instruments: dict[str, Any] = {}
        self._span_stack: list[_Span] = []

    # -- get-or-create --------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        inst = self._instruments.get(name)
        if inst is None:
            inst = Timer(name, self)
            self._instruments[name] = inst
        elif not isinstance(inst, Timer):
            raise ObservabilityError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def _get(self, name: str, cls: type) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    # -- timer span stack -----------------------------------------------
    def _push_span(self, timer: Timer) -> None:
        self._span_stack.append(_Span(timer, self._clock()))

    def _pop_span(self, timer: Timer) -> None:
        if not self._span_stack:
            raise ObservabilityError(
                f"timer {timer.name!r} stopped with no span running"
            )
        span = self._span_stack[-1]
        if span.timer is not timer:
            raise ObservabilityError(
                f"timer misnesting: stopping {timer.name!r} while "
                f"{span.timer.name!r} is the innermost span"
            )
        self._span_stack.pop()
        inclusive = self._clock() - span.start
        timer._record(inclusive, span.child_s)
        if self._span_stack:
            self._span_stack[-1].child_s += inclusive

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-data dump of every instrument, grouped by type, sorted."""
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        }
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out["counters"][name] = inst.snapshot()
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.snapshot()
            elif isinstance(inst, Timer):
                out["timers"][name] = inst.snapshot()
            else:
                out["histograms"][name] = inst.snapshot()
        return out
