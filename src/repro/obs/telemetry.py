"""Schema-versioned run telemetry: export, digest, and round-trip.

One JSON document per run, written by ``repro run --metrics-out`` (and
per sweep point by ``repro sweep --metrics-out``).  The document carries
everything the analysis layer needs to reproduce the paper's timing
figures without re-running the simulation: per-epoch records, final
counters, the trace counter summary, metric snapshots, the audit report
and (optionally) the wall-clock profile.

The **digest** is a BLAKE2b hash over the canonical JSON form of the
*deterministic core* of the document — label, stop reason, epochs,
counters, trace summary.  The observability sections (metrics, audit,
profile) are deliberately excluded: the digest must be identical whether
or not the auditor/profiler were attached, which is exactly what the
determinism regression test asserts.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from ..errors import ObservabilityError
from .spans import span_summary

__all__ = [
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SWEEP_SCHEMA",
    "TELEMETRY_VERSION",
    "DIGEST_FIELDS",
    "run_digest",
    "build_run_telemetry",
    "build_sweep_telemetry",
    "write_telemetry",
    "read_telemetry",
]

TELEMETRY_SCHEMA = "repro.telemetry"
TELEMETRY_SWEEP_SCHEMA = "repro.telemetry.sweep"
TELEMETRY_VERSION = 1

# The digest covers only these top-level keys — the deterministic core of
# a run.  Observability sections stay out so attaching the auditor or the
# profiler cannot change the digest.
DIGEST_FIELDS = (
    "schema",
    "schema_version",
    "label",
    "seed",
    "stopped_reason",
    "total_time_s",
    "config",
    "epochs",
    "counters",
    "trace_summary",
)


def run_digest(payload: dict[str, Any]) -> str:
    """BLAKE2b digest of the canonical JSON form of the deterministic core."""
    core = {key: payload[key] for key in DIGEST_FIELDS if key in payload}
    canonical = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def build_run_telemetry(runner: Any) -> dict[str, Any]:
    """Assemble the telemetry document for a finished DistributedRunner."""
    config = runner.config
    result = runner.result
    obs = runner.obs
    payload: dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "schema_version": TELEMETRY_VERSION,
        "label": result.label,
        "seed": config.seed,
        "stopped_reason": result.stopped_reason,
        "total_time_s": result.total_time_s,
        "config": {
            "experiment": config.label,
            "num_param_servers": config.num_param_servers,
            "num_clients": config.num_clients,
            "max_concurrent_subtasks": config.max_concurrent_subtasks,
            "num_shards": config.num_shards,
            "max_epochs": config.max_epochs,
            "store_kind": config.store_kind,
            "replicas": config.replicas,
            "rule": runner.rule.describe(),
        },
        "epochs": [record.to_dict() for record in result.epochs],
        "counters": dict(result.counters),
        "trace_summary": runner.trace.summary(),
        "metrics": obs.registry.snapshot() if obs.registry is not None else None,
        "audit": obs.report.to_dict() if obs.report is not None else None,
        "profile": (
            obs.profiler.report() if obs.profiler is not None else None
        ),
        # Offline causal-span reconstruction (repro.obs.spans).  Like the
        # other observability sections it stays out of DIGEST_FIELDS, so
        # toggling spans cannot change the determinism digest.
        "spans": span_summary(runner.trace) if obs.config.spans else None,
    }
    payload["digest"] = run_digest(payload)
    return payload


def build_sweep_telemetry(runs: list[dict[str, Any]]) -> dict[str, Any]:
    """Bundle per-point run telemetry into one sweep document."""
    return {
        "schema": TELEMETRY_SWEEP_SCHEMA,
        "schema_version": TELEMETRY_VERSION,
        "runs": runs,
    }


def write_telemetry(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a telemetry document (or a list of them) as pretty JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_telemetry(path: str | Path) -> dict[str, Any]:
    """Load and validate one telemetry document.

    Checks the schema tag, the version, and that the stored digest still
    matches the deterministic core — catching both hand-edits and
    schema-drift between writer and reader.
    """
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema not in (TELEMETRY_SCHEMA, TELEMETRY_SWEEP_SCHEMA):
        raise ObservabilityError(
            f"{path}: not a telemetry document (schema={schema!r})"
        )
    if payload.get("schema_version") != TELEMETRY_VERSION:
        raise ObservabilityError(
            f"{path}: telemetry schema version {payload.get('schema_version')!r} "
            f"unsupported (expected {TELEMETRY_VERSION})"
        )
    documents = payload["runs"] if schema == TELEMETRY_SWEEP_SCHEMA else [payload]
    for document in documents:
        expected = document.get("digest")
        actual = run_digest(document)
        if expected != actual:
            raise ObservabilityError(
                f"{path}: digest mismatch for {document.get('label')!r} "
                f"(stored {expected!r}, computed {actual!r})"
            )
    return payload
