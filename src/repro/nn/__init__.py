"""NumPy deep-learning substrate: autograd, layers, models, optimizers.

This package stands in for the TensorFlow/Keras stack the paper trained
with.  See DESIGN.md §2 for the substitution rationale.
"""

from . import functional
from .conv import avg_pool2d, conv2d, global_avg_pool2d, im2col, max_pool2d
from .initializers import get_initializer, he_normal
from .layers import (
    AvgPool2D,
    BatchNorm,
    LayerNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import cross_entropy, l2_penalty, mae_loss, mse_loss
from .metrics import accuracy, confusion_matrix, evaluate_classifier, top_k_accuracy
from .models import ModelSpec, build_model, make_convnet, make_mlp, make_resnetv2
from .optim import (
    SGD,
    Adam,
    ConstantLR,
    CosineLR,
    LRSchedule,
    Optimizer,
    StepDecayLR,
    WarmupLR,
    clip_grad_norm,
)
from .rnn import RNN, Embedding, GRUCell, LSTMCell, RNNCell
from .serialization import (
    compressed_size,
    state_checksum,
    state_from_bytes,
    state_num_scalars,
    state_to_bytes,
    state_to_vector,
    vector_to_state,
)
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "he_normal",
    "get_initializer",
    "Module",
    "Parameter",
    "Dense",
    "Conv2D",
    "BatchNorm",
    "LayerNorm",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Dropout",
    "Sequential",
    "Residual",
    "cross_entropy",
    "mse_loss",
    "mae_loss",
    "l2_penalty",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "evaluate_classifier",
    "ModelSpec",
    "build_model",
    "make_mlp",
    "make_convnet",
    "make_resnetv2",
    "RNN",
    "RNNCell",
    "GRUCell",
    "LSTMCell",
    "Embedding",
    "Optimizer",
    "SGD",
    "Adam",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "CosineLR",
    "WarmupLR",
    "clip_grad_norm",
    "state_to_bytes",
    "state_from_bytes",
    "state_to_vector",
    "vector_to_state",
    "state_num_scalars",
    "state_checksum",
    "compressed_size",
]
