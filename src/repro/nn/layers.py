"""Neural-network layers (Modules) built on the autograd engine.

A :class:`Module` owns named :class:`Parameter` tensors and optional
non-trainable buffers (e.g. batch-norm running statistics).  Parameters and
buffers together form the *parameter copy* that the paper's clients ship to
the parameter server, so ``state_dict()`` / ``load_state_dict()`` round-trip
both.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigurationError, ShapeError
from . import functional as F
from .conv import avg_pool2d, conv2d, global_avg_pool2d, max_pool2d
from .initializers import Initializer, get_initializer, he_normal
from .tensor import Tensor
from .workspace import Workspace, workspaces_enabled

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "Conv2D",
    "BatchNorm",
    "LayerNorm",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Dropout",
    "Sequential",
    "Residual",
]


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    def __init__(self, data: np.ndarray, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: parameter registry, train/eval mode, state dicts."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self._modules: dict[str, "Module"] = {}
        self.training: bool = True

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array that is part of the model state."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth first, in definition order."""
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted-path, parameter) pairs, depth first."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(f"{prefix}{child_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield (dotted-path, buffer) pairs, depth first."""
        for name, b in self._buffers.items():
            yield (f"{prefix}{name}", b)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total count of trainable scalars (the paper reports 4,941,578)."""
        return sum(p.size for p in self.parameters())

    # -- modes ----------------------------------------------------------
    def train(self) -> "Module":
        """Enter training mode (recursively); returns self."""
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Enter inference mode (recursively); returns self."""
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter in the subtree."""
        for p in self.parameters():
            p.zero_grad()

    # -- state ----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters and buffers, keyed by dotted path."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update(
            {f"buffer:{name}": b.copy() for name, b in self.named_buffers()}
        )
        return state

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Live (uncopied) parameter/buffer arrays, keyed like ``state_dict``.

        The arrays are the module's actual storage — writing through them
        changes the model.  This is the zero-copy counterpart of
        :meth:`state_dict` for use with
        :class:`~repro.nn.serialization.StateLayout`: the optimizers and
        batch-norm update these arrays strictly in place, so the mapping
        stays valid for the module's whole lifetime.
        """
        arrays = {name: p.data for name, p in self.named_parameters()}
        arrays.update({f"buffer:{name}": b for name, b in self.named_buffers()})
        return arrays

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a state dict produced by :meth:`state_dict` (strict)."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        expected = set(own_params) | {f"buffer:{n}" for n in own_buffers}
        if set(state) != expected:
            missing = expected - set(state)
            extra = set(state) - expected
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for name, p in own_params.items():
            src = np.asarray(state[name])
            if src.shape != p.data.shape:
                raise ShapeError(
                    f"parameter {name!r}: shape {src.shape} != {p.data.shape}"
                )
            np.copyto(p.data, src)
        for name, b in own_buffers.items():
            src = np.asarray(state[f"buffer:{name}"])
            if src.shape != b.shape:
                raise ShapeError(f"buffer {name!r}: shape {src.shape} != {b.shape}")
            np.copyto(b, src)

    # -- call -----------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Dense(Module):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        initializer: Initializer | str = he_normal,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("Dense dimensions must be positive")
        if isinstance(initializer, str):
            initializer = get_initializer(initializer)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializer((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2D(Module):
    """2-D convolution layer (NCHW / OIHW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        initializer: Initializer | str = he_normal,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ConfigurationError("invalid Conv2D geometry")
        if isinstance(initializer, str):
            initializer = get_initializer(initializer)
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(initializer(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        # Per-layer scratch arena: im2col/GEMM/col2im intermediates are
        # reused across steps (see repro.nn.workspace for the safety model).
        self._workspace = Workspace()

    def forward(self, x: Tensor) -> Tensor:
        ws = self._workspace if workspaces_enabled() else None
        return conv2d(
            x, self.weight, self.bias, stride=self.stride, pad=self.padding, workspace=ws
        )


class BatchNorm(Module):
    """Batch normalization over the channel axis (works for 2-D and 4-D).

    Running statistics are registered buffers: they travel with the
    parameter copy between clients and the parameter server, exactly as a
    Keras ``.h5`` parameter file would carry them.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _axes_and_shape(self, x: Tensor) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if x.ndim == 2:
            return (0,), (1, self.num_features)
        if x.ndim == 4:
            return (0, 2, 3), (1, self.num_features, 1, 1)
        raise ShapeError(f"BatchNorm expects 2-D or 4-D input, got ndim={x.ndim}")

    def forward(self, x: Tensor) -> Tensor:
        axes, bshape = self._axes_and_shape(x)
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            # Update running stats in place (buffers are shared references).
            self.running_mean *= self.momentum
            self.running_mean += (1.0 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1.0 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(bshape)) * inv_std.reshape(bshape)
        return x_hat * self.gamma.reshape(bshape) + self.beta.reshape(bshape)


class LayerNorm(Module):
    """Layer normalization over the last axis (Ba et al.).

    Unlike :class:`BatchNorm` it has no running statistics and no
    train/eval behaviour split, which makes it the natural choice for the
    NLP/recurrent workloads (§V) where batch statistics are unstable.
    """

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ConfigurationError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ShapeError(
                f"LayerNorm({self.num_features}) got last axis {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv_std = (var + self.eps) ** -0.5
        return centered * inv_std * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class MaxPool2D(Module):
    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride
        self._workspace = Workspace()

    def forward(self, x: Tensor) -> Tensor:
        ws = self._workspace if workspaces_enabled() else None
        return max_pool2d(x, self.kernel, self.stride, workspace=ws)


class AvgPool2D(Module):
    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride
        self._workspace = Workspace()

    def forward(self, x: Tensor) -> Tensor:
        ws = self._workspace if workspaces_enabled() else None
        return avg_pool2d(x, self.kernel, self.stride, workspace=ws)


class GlobalAvgPool2D(Module):
    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout; identity in eval mode (paper trains without it)."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)
        for i, m in enumerate(modules):
            self._modules[str(i)] = m

    def append(self, module: Module) -> None:
        """Add a module to the end of the pipeline."""
        self._modules[str(len(self.layers))] = module
        self.layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class Residual(Module):
    """Residual wrapper: ``y = body(x) + shortcut(x)``.

    With ``shortcut=None`` the identity is used, which requires matching
    shapes (the classic ResNet identity block).
    """

    def __init__(self, body: Module, shortcut: Module | None = None) -> None:
        super().__init__()
        self.body = body
        if shortcut is not None:
            self.shortcut = shortcut
        else:
            self._shortcut_identity = True

    def forward(self, x: Tensor) -> Tensor:
        branch = self.body(x)
        skip = x if "shortcut" not in self._modules else self._modules["shortcut"](x)
        if branch.shape != skip.shape:
            raise ShapeError(
                f"residual branch {branch.shape} does not match skip {skip.shape}; "
                "provide a projection shortcut"
            )
        return branch + skip
