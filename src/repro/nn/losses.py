"""Loss functions.

The reproduction trains classifiers with softmax cross-entropy (as the
paper's CIFAR10 setup does); MSE/MAE are provided for the regression-style
workloads (time-series forecasting) discussed in §V.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from . import functional as F
from .tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "mae_loss", "l2_penalty"]


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy between ``logits`` (N, C) and int labels (N,).

    Fused log-softmax + NLL for numerical stability, with the standard
    closed-form gradient ``(softmax - onehot) / N``.
    """
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, C) logits, got {logits.shape}")
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    n, c = logits.shape
    if labels.min() < 0 or labels.max() >= c:
        raise ShapeError(f"labels out of range [0, {c})")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    loss = -log_probs[np.arange(n), labels].mean()

    def backward(g: np.ndarray) -> None:
        if logits.requires_grad:
            grad = np.exp(log_probs)
            grad[np.arange(n), labels] -= 1.0
            logits._accumulate(grad * (float(g) / n))

    return Tensor._make(np.asarray(loss), (logits,), backward)


def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    if pred.shape != target_t.shape:
        raise ShapeError(f"pred {pred.shape} vs target {target_t.shape}")
    diff = pred - target_t
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean absolute error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    if pred.shape != target_t.shape:
        raise ShapeError(f"pred {pred.shape} vs target {target_t.shape}")
    return F.abs(pred - target_t).mean()


def l2_penalty(parameters: list[Tensor], coefficient: float) -> Tensor:
    """Sum of squared parameters times ``coefficient`` (weight decay).

    The paper disables regularization; available for ablations.
    """
    total: Tensor | None = None
    for p in parameters:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coefficient
