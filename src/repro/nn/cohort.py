"""Vectorized client cohorts: N clients' training steps in one stacked call.

A *cohort* is a group of homogeneous client subtasks — same architecture,
same base parameter version, same shard length — whose local training
passes are fused into batched NumPy kernels with a leading ``cohort``
axis G.  Every parameter (and batch-norm buffer) carries its own member
slice, because members diverge from the shared base after their first
optimizer step; only the *operations* are shared.

Bit-identity contract: for every supported layer the stacked kernel
performs, per member, exactly the operations the serial layer performs —
``np.matmul`` on (G, n, d) @ (G, d, k) issues the same per-slice GEMM as
the serial 2-D product, elementwise ops are shape-blind, and axis
reductions over the member's own block accumulate in the same order.
``tests/nn/test_cohort_equivalence.py`` holds this contract under
Hypothesis across dtypes, cohort sizes and update rules; the runner-level
digest test holds it end to end.

Unsupported layer kinds (Residual, LayerNorm, Dropout, recurrent cells)
raise :class:`CohortUnsupported` at compile time — callers fall back to
the serial per-client path, never to silently different numerics.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import TrainingError
from .conv import avg_pool2d, col2im, global_avg_pool2d, im2col, max_pool2d
from .layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import SGD, Adam
from .serialization import StateLayout
from .tensor import Tensor

__all__ = [
    "CohortUnsupported",
    "cohort_conv2d",
    "cohort_cross_entropy",
    "CohortModel",
    "CohortTrainer",
]


class CohortUnsupported(TrainingError):
    """The module tree contains a layer with no stacked kernel."""


# ---------------------------------------------------------------------------
# Stacked kernels
# ---------------------------------------------------------------------------

def cohort_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    stride: int = 1,
    pad: int = 0,
) -> Tensor:
    """Batched 2-D convolution: (G, N, C, H, W) with per-member OIHW weights.

    The im2col transform is per-sample, so the cohort axis folds into the
    batch axis for the unfold/scatter; the GEMM stays per-member (weights
    differ) as one batched ``np.matmul`` — the same per-slice dgemm the
    serial kernel issues, hence bit-identical outputs and gradients.
    """
    g_, n, c, h, w = x.shape
    _, co, ci, kh, kw = weight.shape
    if ci != c:
        raise TrainingError(f"cohort conv input has {c} channels, weight expects {ci}")
    cols, oh, ow = im2col(x.data.reshape(g_ * n, c, h, w), kh, kw, stride, pad)
    cols3 = cols.reshape(g_, n * oh * ow, ci * kh * kw)
    w2d = weight.data.reshape(g_, co, ci * kh * kw)
    out = np.matmul(cols3, w2d.transpose(0, 2, 1))  # (G, N*OH*OW, CO)
    if bias is not None:
        out += bias.data.reshape(g_, 1, co)
    out5 = np.ascontiguousarray(
        out.reshape(g_, n, oh, ow, co).transpose(0, 1, 4, 2, 3)
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        g2d = g.transpose(0, 1, 3, 4, 2).reshape(g_, n * oh * ow, co)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g2d.sum(axis=1))
        if weight.requires_grad:
            gw = np.matmul(g2d.transpose(0, 2, 1), cols3)
            weight._accumulate(gw.reshape(weight.shape))
        if x.requires_grad:
            gcols = np.matmul(g2d, w2d)  # (G, N*OH*OW, CI*KH*KW)
            gx = col2im(
                gcols.reshape(g_ * n * oh * ow, ci * kh * kw),
                (g_ * n, c, h, w),
                kh,
                kw,
                stride,
                pad,
            )
            x._accumulate(gx.reshape(x.shape))

    return Tensor._make(out5, parents, backward)


def cohort_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Stacked softmax cross-entropy: (G, N, C) logits, (G, N) int labels.

    Per member this is exactly :func:`repro.nn.losses.cross_entropy` — the
    same shifted-logit logsumexp, the same gather, the same ``1/N``-scaled
    closed-form gradient.  The scalar value is the *sum* of per-member
    mean losses (each member's gradient seed is still 1, matching one
    serial ``backward()`` per member).
    """
    g_, n, c = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (g_, n):
        raise TrainingError(
            f"cohort labels shape {labels.shape} incompatible with logits "
            f"{logits.shape}"
        )
    shifted = logits.data - logits.data.max(axis=2, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=2, keepdims=True))
    log_probs = shifted - logsumexp
    gi = np.arange(g_)[:, None]
    ni = np.arange(n)[None, :]
    per_member = -log_probs[gi, ni, labels].mean(axis=1)  # (G,)

    def backward(g: np.ndarray) -> None:
        if logits.requires_grad:
            grad = np.exp(log_probs)
            grad[gi, ni, labels] -= 1.0
            logits._accumulate(grad * (float(g) / n))

    return Tensor._make(np.asarray(per_member.sum()), (logits,), backward)


# ---------------------------------------------------------------------------
# Stacked model: compiled from a serial Module tree
# ---------------------------------------------------------------------------

class _CohortDense:
    def __init__(self, model: "CohortModel", prefix: str, layer: Dense) -> None:
        self.weight = model.param(f"{prefix}weight")
        self.bias = model.param(f"{prefix}bias") if layer.bias is not None else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            g_, k = self.bias.shape
            out = out + self.bias.reshape(g_, 1, k)
        return out


class _CohortConv2D:
    def __init__(self, model: "CohortModel", prefix: str, layer: Conv2D) -> None:
        self.weight = model.param(f"{prefix}weight")
        self.bias = model.param(f"{prefix}bias") if layer.bias is not None else None
        self.stride = layer.stride
        self.padding = layer.padding

    def __call__(self, x: Tensor) -> Tensor:
        return cohort_conv2d(
            x, self.weight, self.bias, stride=self.stride, pad=self.padding
        )


class _CohortBatchNorm:
    """Stacked batch norm: per-member batch statistics and running buffers.

    Mirrors :class:`repro.nn.layers.BatchNorm` in training mode op for op,
    with the reduction axes shifted by the cohort axis — per-member
    mean/var over the member's own batch block, verified bit-identical.
    """

    def __init__(self, model: "CohortModel", prefix: str, layer: BatchNorm) -> None:
        self.gamma = model.param(f"{prefix}gamma")
        self.beta = model.param(f"{prefix}beta")
        self.running_mean = model.buffer(f"buffer:{prefix}running_mean")
        self.running_var = model.buffer(f"buffer:{prefix}running_var")
        self.momentum = layer.momentum
        self.eps = layer.eps
        self.num_features = layer.num_features

    def __call__(self, x: Tensor) -> Tensor:
        g_ = x.shape[0]
        if x.ndim == 3:
            axes: tuple[int, ...] = (1,)
            bshape = (g_, 1, self.num_features)
        elif x.ndim == 5:
            axes = (1, 3, 4)
            bshape = (g_, 1, self.num_features, 1, 1)
        else:
            raise CohortUnsupported(
                f"cohort BatchNorm expects 3-D or 5-D stacked input, got "
                f"ndim={x.ndim}"
            )
        # Training-mode statistics (client subtasks always train).
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        self.running_mean *= self.momentum
        self.running_mean += (1.0 - self.momentum) * mean
        self.running_var *= self.momentum
        self.running_var += (1.0 - self.momentum) * var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(bshape)) * inv_std.reshape(bshape)
        return x_hat * self.gamma.reshape(bshape) + self.beta.reshape(bshape)


class _CohortFold:
    """Per-sample layer applied by folding the cohort into the batch axis."""

    def __init__(self, fn: Callable[[Tensor], Tensor]) -> None:
        self.fn = fn

    def __call__(self, x: Tensor) -> Tensor:
        g_, n = x.shape[0], x.shape[1]
        folded = self.fn(x.reshape((g_ * n,) + x.shape[2:]))
        return folded.reshape((g_, n) + folded.shape[1:])


class _CohortFlatten:
    def __call__(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], x.shape[1], -1)


class CohortModel:
    """A serial module tree compiled into stacked-parameter form.

    Parameters and buffers are held as (G, \\*shape) arrays keyed by the
    serial model's :class:`StateLayout` keys; :meth:`load` scatters G flat
    base vectors into them and :meth:`pack` gathers G flat result vectors
    back.  The same instance is reused across steps — every step fully
    overwrites the state, exactly as the serial per-client models are
    overwritten from the downloaded parameter file.
    """

    def __init__(self, module: Module, group: int) -> None:
        if group < 1:
            raise TrainingError(f"cohort group must be >= 1, got {group}")
        self.group = group
        self.layout = StateLayout.for_state(module.state_dict())
        self.params: dict[str, Tensor] = {}
        self.buffers: dict[str, np.ndarray] = {}
        for key, shape in zip(self.layout.keys, self.layout.shapes):
            stacked = np.zeros((group,) + shape)
            if key.startswith("buffer:"):
                self.buffers[key] = stacked
            else:
                self.params[key] = Tensor(stacked, requires_grad=True, name=key)
        self.forwards = self._compile(module, "")

    # -- compile --------------------------------------------------------
    def param(self, key: str) -> Tensor:
        return self.params[key]

    def buffer(self, key: str) -> np.ndarray:
        return self.buffers[key]

    def _compile(self, module: Module, prefix: str) -> list[Callable[[Tensor], Tensor]]:
        if isinstance(module, Sequential):
            chain: list[Callable[[Tensor], Tensor]] = []
            for name, child in module._modules.items():
                chain.extend(self._compile(child, f"{prefix}{name}."))
            return chain
        if isinstance(module, Dense):
            return [_CohortDense(self, prefix, module)]
        if isinstance(module, Conv2D):
            return [_CohortConv2D(self, prefix, module)]
        if isinstance(module, BatchNorm):
            return [_CohortBatchNorm(self, prefix, module)]
        if isinstance(module, Flatten):
            return [_CohortFlatten()]
        if isinstance(module, ReLU):
            from . import functional as F

            return [_CohortFold(F.relu)]
        if isinstance(module, LeakyReLU):
            from . import functional as F

            slope = module.negative_slope
            return [_CohortFold(lambda x: F.leaky_relu(x, slope))]
        if isinstance(module, Tanh):
            from . import functional as F

            return [_CohortFold(F.tanh)]
        if isinstance(module, Sigmoid):
            from . import functional as F

            return [_CohortFold(F.sigmoid)]
        if isinstance(module, MaxPool2D):
            kernel, stride = module.kernel, module.stride
            return [_CohortFold(lambda x: max_pool2d(x, kernel, stride))]
        if isinstance(module, AvgPool2D):
            kernel, stride = module.kernel, module.stride
            return [_CohortFold(lambda x: avg_pool2d(x, kernel, stride))]
        if isinstance(module, GlobalAvgPool2D):
            return [_CohortFold(global_avg_pool2d)]
        raise CohortUnsupported(
            f"no stacked kernel for layer {type(module).__name__}; "
            "this cohort must run on the serial path"
        )

    # -- state ----------------------------------------------------------
    def load(self, base_vecs: np.ndarray) -> None:
        """Scatter (G, total_size) flat vectors into the stacked state."""
        if base_vecs.shape != (self.group, self.layout.total_size):
            raise TrainingError(
                f"cohort base vectors have shape {base_vecs.shape}, expected "
                f"({self.group}, {self.layout.total_size})"
            )
        for key, offset, size, shape in zip(
            self.layout.keys, self.layout.offsets, self.layout.sizes, self.layout.shapes
        ):
            dst = (
                self.buffers[key]
                if key.startswith("buffer:")
                else self.params[key].data
            )
            np.copyto(dst, base_vecs[:, offset : offset + size].reshape((self.group,) + shape))

    def pack(self, out: np.ndarray | None = None) -> np.ndarray:
        """Gather the stacked state back into (G, total_size) flat vectors."""
        if out is None:
            out = np.empty((self.group, self.layout.total_size))
        for key, offset, size in zip(
            self.layout.keys, self.layout.offsets, self.layout.sizes
        ):
            src = (
                self.buffers[key]
                if key.startswith("buffer:")
                else self.params[key].data
            )
            out[:, offset : offset + size] = src.reshape(self.group, size)
        return out

    def accumulate_grads(self, total: np.ndarray) -> None:
        """Add each parameter's current gradient into (G, total_size) slots."""
        for key, offset, size in zip(
            self.layout.keys, self.layout.offsets, self.layout.sizes
        ):
            if key.startswith("buffer:"):
                continue
            grad = self.params[key].grad
            if grad is None:
                continue
            view = total[:, offset : offset + size]
            np.add(view, grad.reshape(self.group, size), out=view)

    # -- forward --------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        for fn in self.forwards:
            x = fn(x)
        return x

    def zero_grad(self) -> None:
        for p in self.params.values():
            p.zero_grad()

    def parameters(self) -> list[Tensor]:
        return list(self.params.values())


class CohortTrainer:
    """Run G members' full local-training subtasks as one stacked pass.

    The caller supplies, per member, the flat base parameter vector, the
    shard and the pre-drawn per-epoch batch orders (RNG draws happen at
    the caller's site so the draw *order* matches the serial schedule).
    Returns stacked new parameter vectors and, when the update rule
    consumes gradients, the stacked accumulated local gradients.
    """

    def __init__(self, template: Module, group: int) -> None:
        self.model = CohortModel(template, group)
        self.group = group

    def run(
        self,
        base_vecs: np.ndarray,
        shards: list,
        orders: list[list[np.ndarray]],
        batch_size: int,
        optimizer: str,
        learning_rate: float,
        local_epochs: int,
        collect_gradient: bool = False,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        g_ = self.group
        if not (len(shards) == len(orders) == g_):
            raise TrainingError(
                f"cohort of {g_} got {len(shards)} shards / {len(orders)} orders"
            )
        n = len(shards[0])
        if any(len(shard) != n for shard in shards):
            raise TrainingError("cohort members must have equal shard lengths")
        model = self.model
        model.load(base_vecs)
        if optimizer == "adam":
            opt = Adam(model.parameters(), lr=learning_rate)
        else:
            opt = SGD(model.parameters(), lr=learning_rate)
        total = (
            np.zeros((g_, model.layout.total_size)) if collect_gradient else None
        )
        for epoch in range(local_epochs):
            for start in range(0, n, batch_size):
                idxs = [orders[g][epoch][start : start + batch_size] for g in range(g_)]
                xb = np.stack([shards[g].x[idxs[g]] for g in range(g_)])
                yb = np.stack([shards[g].y[idxs[g]] for g in range(g_)])
                model.zero_grad()
                loss = cohort_cross_entropy(model.forward(Tensor(xb)), yb)
                loss.backward()
                if total is not None:
                    model.accumulate_grads(total)
                opt.step()
        return model.pack(), total
