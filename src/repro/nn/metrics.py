"""Evaluation metrics and model evaluation helpers."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .layers import Module
from .losses import cross_entropy
from .tensor import Tensor, no_grad

__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix", "evaluate_classifier"]


def accuracy(logits: np.ndarray | Tensor, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the integer label."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels)
    if data.ndim != 2 or labels.shape != (data.shape[0],):
        raise ShapeError(f"accuracy expects (N, C) vs (N,), got {data.shape} vs {labels.shape}")
    return float((data.argmax(axis=1) == labels).mean())


def top_k_accuracy(logits: np.ndarray | Tensor, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose label is within the top-k scores."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels)
    k = min(k, data.shape[1])
    topk = np.argpartition(-data, k - 1, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())


def confusion_matrix(
    logits: np.ndarray | Tensor, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """(num_classes, num_classes) matrix: rows = true class, cols = predicted."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    preds = data.argmax(axis=1)
    mat = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(mat, (np.asarray(labels), preds), 1)
    return mat


def evaluate_classifier(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 256,
) -> tuple[float, float]:
    """Return ``(mean loss, accuracy)`` of ``model`` on ``(x, y)``.

    Runs in eval mode under ``no_grad`` and restores the previous mode —
    this is the validation pass the parameter server performs after each
    assimilation (§III-A).
    """
    was_training = model.training
    model.eval()
    total_loss = 0.0
    total_correct = 0
    n = x.shape[0]
    try:
        with no_grad():
            for start in range(0, n, batch_size):
                xb = Tensor(x[start : start + batch_size])
                yb = y[start : start + batch_size]
                logits = model(xb)
                total_loss += cross_entropy(logits, yb).item() * len(yb)
                total_correct += int((logits.data.argmax(axis=1) == yb).sum())
    finally:
        if was_training:
            model.train()
    return total_loss / n, total_correct / n
