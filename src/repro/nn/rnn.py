"""Recurrent layers: Elman RNN and GRU cells with BPTT.

§II-A cites JSDoop training an RNN for text prediction on a volunteer
system, and §V lists NLP as a target workload; these cells make that
workload expressible on our substrate.  Backpropagation through time falls
out of the autograd engine — the per-step graphs chain naturally.

Layout: sequences are (batch, time, features); hidden states (batch, hidden).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ShapeError
from . import functional as F
from .initializers import Initializer, glorot_uniform
from .layers import Module, Parameter
from .tensor import Tensor

__all__ = ["RNNCell", "GRUCell", "LSTMCell", "RNN", "Embedding"]


class Embedding(Module):
    """Token-id → dense-vector lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        scale: float = 0.1,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ConfigurationError("embedding dims must be positive")
        self.num_embeddings = num_embeddings
        self.weight = Parameter(
            rng.normal(scale=scale, size=(num_embeddings, embedding_dim))
        )

    def forward(self, indices: np.ndarray) -> Tensor:  # type: ignore[override]
        indices = np.asarray(indices)
        if indices.min() < 0 or indices.max() >= self.num_embeddings:
            raise ShapeError(
                f"token ids out of range [0, {self.num_embeddings})"
            )
        return F.embedding_lookup(self.weight, indices)


class RNNCell(Module):
    """Elman cell: ``h' = tanh(x W_xh + h W_hh + b)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        initializer: Initializer = glorot_uniform,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ConfigurationError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_xh = Parameter(initializer((input_size, hidden_size), rng))
        self.w_hh = Parameter(initializer((hidden_size, hidden_size), rng))
        self.bias = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:  # type: ignore[override]
        return F.tanh(x @ self.w_xh + h @ self.w_hh + self.bias)

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRUCell(Module):
    """Gated recurrent unit (Cho et al. 2014).

    ``z = σ(x W_xz + h W_hz + b_z)``; ``r = σ(x W_xr + h W_hr + b_r)``;
    ``ĥ = tanh(x W_xn + (r ⊙ h) W_hn + b_n)``; ``h' = (1−z) ⊙ h + z ⊙ ĥ``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        initializer: Initializer = glorot_uniform,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ConfigurationError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        for gate in ("z", "r", "n"):
            setattr(self, f"w_x{gate}", Parameter(initializer((input_size, hidden_size), rng)))
            setattr(self, f"w_h{gate}", Parameter(initializer((hidden_size, hidden_size), rng)))
            setattr(self, f"b_{gate}", Parameter(np.zeros(hidden_size)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:  # type: ignore[override]
        z = F.sigmoid(x @ self.w_xz + h @ self.w_hz + self.b_z)
        r = F.sigmoid(x @ self.w_xr + h @ self.w_hr + self.b_r)
        n = F.tanh(x @ self.w_xn + (r * h) @ self.w_hn + self.b_n)
        return (1.0 - z) * h + z * n

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class LSTMCell(Module):
    """Long short-term memory cell (Hochreiter & Schmidhuber).

    Gates: input ``i``, forget ``f``, output ``o``, candidate ``g``::

        c' = f ⊙ c + i ⊙ g
        h' = o ⊙ tanh(c')

    The forget-gate bias is initialized to 1 (the standard trick that
    stops early training from flushing the cell state).
    State is the pair ``(h, c)``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        initializer: Initializer = glorot_uniform,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ConfigurationError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        for gate in ("i", "f", "o", "g"):
            setattr(self, f"w_x{gate}", Parameter(initializer((input_size, hidden_size), rng)))
            setattr(self, f"w_h{gate}", Parameter(initializer((hidden_size, hidden_size), rng)))
            bias = np.ones(hidden_size) if gate == "f" else np.zeros(hidden_size)
            setattr(self, f"b_{gate}", Parameter(bias))

    def forward(  # type: ignore[override]
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        h, c = state
        i = F.sigmoid(x @ self.w_xi + h @ self.w_hi + self.b_i)
        f = F.sigmoid(x @ self.w_xf + h @ self.w_hf + self.b_f)
        o = F.sigmoid(x @ self.w_xo + h @ self.w_ho + self.b_o)
        g = F.tanh(x @ self.w_xg + h @ self.w_hg + self.b_g)
        c_next = f * c + i * g
        h_next = o * F.tanh(c_next)
        return h_next, c_next

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class RNN(Module):
    """Unrolls a cell over a (batch, time, features) sequence.

    Works with :class:`RNNCell`/:class:`GRUCell` (state = hidden tensor)
    and :class:`LSTMCell` (state = (h, c) pair).  Returns the hidden
    outputs of every step stacked on the time axis, plus the final state.
    """

    def __init__(self, cell: RNNCell | GRUCell | LSTMCell) -> None:
        super().__init__()
        self.cell = cell

    def forward(  # type: ignore[override]
        self, x: Tensor, state0=None
    ) -> tuple[Tensor, object]:
        if x.ndim != 3:
            raise ShapeError(f"RNN expects (batch, time, features), got {x.shape}")
        batch, steps, _ = x.shape
        state = state0 if state0 is not None else self.cell.initial_state(batch)
        outputs: list[Tensor] = []
        for t in range(steps):
            state = self.cell(x[:, t, :], state)
            hidden = state[0] if isinstance(state, tuple) else state
            outputs.append(hidden)
        return F.stack(outputs, axis=1), state
