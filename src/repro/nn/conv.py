"""Convolution and pooling via im2col (vectorized, no Python pixel loops).

The im2col transform rewrites a convolution as a single GEMM, which is the
standard way to get NumPy-speed convolutions (see the HPC guide's advice to
push work into vectorized kernels).  Layout is NCHW throughout.

Every kernel takes an optional :class:`~repro.nn.workspace.Workspace`.
With one, the large per-step intermediates — padded input, column matrix,
GEMM output, backward column gradients, col2im scatter target — are
written into reused buffers instead of freshly allocated (shapes repeat
every step, so after the first step the hot path allocates only the
output tensors the autograd graph must own).  The arithmetic is the same
ops in the same order either way, so results are bit-identical with or
without a workspace.  Constraint: a workspace-backed forward invalidates
the intermediates captured by the *previous* forward of the same layer,
so backward must run before that layer's next forward — which the
step-per-batch training loop guarantees.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .tensor import Tensor
from .workspace import Workspace

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces non-positive output size: input={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    workspace: Workspace | None = None,
    tag: str = "im2col",
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N*OH*OW, C*kh*kw).

    Returns the column matrix plus the output spatial dims.  Built with
    stride tricks: the intermediate 6-D view costs no copies; only the final
    reshape materializes — into a reused workspace buffer when one is given
    (the returned matrix is then owned by the workspace and valid until the
    next call with the same tag and shape).
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        if workspace is None:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        else:
            padded = workspace.zeros(
                f"{tag}:pad", (n, c, h + 2 * pad, w + 2 * pad), x.dtype
            )
            padded[:, :, pad:-pad, pad:-pad] = x
            x = padded
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, OH, OW, C, kh, kw) -> (N*OH*OW, C*kh*kw)
    t = windows.transpose(0, 2, 3, 1, 4, 5)
    if workspace is None:
        cols = np.ascontiguousarray(t.reshape(n * oh * ow, c * kh * kw))
    else:
        cols = workspace.buffer(f"{tag}:cols", (n * oh * ow, c * kh * kw), x.dtype)
        np.copyto(cols.reshape(n, oh, ow, c, kh, kw), t)
    return cols, oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    workspace: Workspace | None = None,
    tag: str = "col2im",
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image.

    With a workspace the scatter target is a reused buffer and the return
    value (a view of it when ``pad > 0``) is only valid until the next call
    with the same tag — callers hand it straight to ``Tensor._accumulate``,
    which copies.
    """
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if workspace is None:
        padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    else:
        padded = workspace.zeros(
            f"{tag}:pad", (n, c, h + 2 * pad, w + 2 * pad), cols.dtype
        )
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    # cols6: (N, C, kh, kw, OH, OW); add each kernel offset's contribution.
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols6[:, :, i, j]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    stride: int = 1,
    pad: int = 0,
    workspace: Workspace | None = None,
) -> Tensor:
    """2-D cross-correlation of NCHW input ``x`` with OIHW ``weight``.

    Implemented as im2col + GEMM; the backward pass reuses the cached
    column matrix for the weight gradient and col2im for the input gradient.
    The output tensor's data is always freshly allocated; a workspace only
    backs the intermediates.
    """
    if x.ndim != 4:
        raise ShapeError(f"conv2d expects NCHW input, got ndim={x.ndim}")
    if weight.ndim != 4:
        raise ShapeError(f"conv2d expects OIHW weight, got ndim={weight.ndim}")
    n, c, h, w = x.shape
    co, ci, kh, kw = weight.shape
    if ci != c:
        raise ShapeError(f"input has {c} channels but weight expects {ci}")

    cols, oh, ow = im2col(x.data, kh, kw, stride, pad, workspace, tag="fwd")
    w2d = weight.data.reshape(co, ci * kh * kw)
    if workspace is None:
        out = cols @ w2d.T  # (N*OH*OW, CO)
    else:
        out = np.matmul(
            cols, w2d.T, out=workspace.buffer("fwd:gemm", (n * oh * ow, co))
        )
    if bias is not None:
        out += bias.data
    out = out.reshape(n, oh, ow, co).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        if workspace is None:
            g2d = g.transpose(0, 2, 3, 1).reshape(n * oh * ow, co)
        else:
            g2d = workspace.buffer("bwd:g2d", (n * oh * ow, co))
            np.copyto(g2d.reshape(n, oh, ow, co), g.transpose(0, 2, 3, 1))
        if bias is not None and bias.requires_grad:
            bias._accumulate(g2d.sum(axis=0))
        if weight.requires_grad:
            if workspace is None:
                gw = g2d.T @ cols
            else:
                gw = np.matmul(
                    g2d.T, cols, out=workspace.buffer("bwd:gw", (co, ci * kh * kw))
                )
            weight._accumulate(gw.reshape(weight.shape))
        if x.requires_grad:
            if workspace is None:
                gcols = g2d @ w2d
            else:
                gcols = np.matmul(
                    g2d, w2d, out=workspace.buffer("bwd:gcols", cols.shape)
                )
            x._accumulate(
                col2im(gcols, (n, c, h, w), kh, kw, stride, pad, workspace, tag="bwd")
            )

    return Tensor._make(np.ascontiguousarray(out), parents, backward)


def max_pool2d(
    x: Tensor,
    kernel: int,
    stride: int | None = None,
    workspace: Workspace | None = None,
) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0, workspace, tag="fwd"
    )
    # cols: (N*C*OH*OW, kernel*kernel)
    rows = cols.shape[0]
    if workspace is None:
        argmax = cols.argmax(axis=1)
        row_idx = np.arange(rows)
    else:
        argmax = cols.argmax(axis=1, out=workspace.buffer("fwd:argmax", (rows,), np.intp))
        row_idx = workspace.arange_rows(rows)
    out = cols[row_idx, argmax]
    out4 = out.reshape(n, c, oh, ow)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        if workspace is None:
            gcols = np.zeros_like(cols)
        else:
            gcols = workspace.zeros("bwd:gcols", cols.shape, cols.dtype)
        gcols[row_idx, argmax] = g.reshape(-1)
        gx = col2im(
            gcols, (n * c, 1, h, w), kernel, kernel, stride, 0, workspace, tag="bwd"
        )
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out4, (x,), backward)


def avg_pool2d(
    x: Tensor,
    kernel: int,
    stride: int | None = None,
    workspace: Workspace | None = None,
) -> Tensor:
    """Average pooling over windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0, workspace, tag="fwd"
    )
    out = cols.mean(axis=1).reshape(n, c, oh, ow)
    inv = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        if workspace is None:
            gcols = np.repeat(g.reshape(-1, 1), kernel * kernel, axis=1) * inv
        else:
            gcols = workspace.buffer("bwd:gcols", cols.shape, cols.dtype)
            np.copyto(gcols, g.reshape(-1, 1))
            gcols *= inv
        gx = col2im(
            gcols, (n * c, 1, h, w), kernel, kernel, stride, 0, workspace, tag="bwd"
        )
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))
    inv = 1.0 / (h * w)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            # _accumulate adds into its own buffer, so the stride-0
            # broadcast view needs no materializing copy.
            x._accumulate(np.broadcast_to(g[:, :, None, None] * inv, x.shape))

    return Tensor._make(out, (x,), backward)
