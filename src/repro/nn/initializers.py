"""Weight initializers.

The paper initializes the ResNetV2 parameters with a **He-normal**
initializer (§IV-A); we implement that plus the other common schemes so the
substrate is usable beyond the single reproduced configuration.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Initializer",
    "he_normal",
    "he_uniform",
    "glorot_normal",
    "glorot_uniform",
    "zeros",
    "ones",
    "normal",
    "get_initializer",
]

Initializer = Callable[[tuple[int, ...], np.random.Generator], np.ndarray]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weights.

    Dense weights are (in, out); conv weights are OIHW, where the receptive
    field multiplies both fans.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal: N(0, sqrt(2 / fan_in)) — the paper's initializer."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform: U(±sqrt(6 / fan_in))."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal: N(0, sqrt(2 / (fan_in + fan_out)))."""
    fan_in, fan_out = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / (fan_in + fan_out)), size=shape)


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(±sqrt(6 / (fan_in + fan_out)))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros (the bias default)."""
    return np.zeros(shape)


def ones(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-ones (batch-norm gain default)."""
    return np.ones(shape)


def normal(std: float = 0.01) -> Initializer:
    """Factory for a plain N(0, std) initializer."""

    def init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, std, size=shape)

    return init


_REGISTRY: dict[str, Initializer] = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "glorot_normal": glorot_normal,
    "glorot_uniform": glorot_uniform,
    "zeros": zeros,
    "ones": ones,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initializer by name (as model configs reference them)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown initializer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
