"""Differentiable functions on :class:`~repro.nn.tensor.Tensor`.

Everything here follows the same pattern as the arithmetic ops on
``Tensor``: compute the forward value with vectorized NumPy, close over the
inputs, and register an adjoint via ``Tensor._make``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .tensor import Tensor, unbroadcast

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "exp",
    "log",
    "sqrt",
    "abs",
    "clip",
    "maximum",
    "softmax",
    "log_softmax",
    "dropout",
    "concatenate",
    "stack",
    "pad2d",
    "embedding_lookup",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    mask = x.data > 0

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * mask)

    return Tensor._make(np.where(mask, x.data, 0.0), (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU: identity for positive inputs, scaled for negative."""
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * scale)

    return Tensor._make(x.data * scale, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x.data)
    pos = x.data >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x.data[pos]))
    ex = np.exp(x.data[~pos])
    out[~pos] = ex / (1.0 + ex)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * out * (1.0 - out))

    return Tensor._make(out, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    out = np.tanh(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * (1.0 - out * out))

    return Tensor._make(out, (x,), backward)


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    out = np.exp(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * out)

    return Tensor._make(out, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Natural logarithm."""

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g / x.data)

    return Tensor._make(np.log(x.data), (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    out = np.sqrt(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * 0.5 / out)

    return Tensor._make(out, (x,), backward)


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient sign(x))."""
    sign = np.sign(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * sign)

    return Tensor._make(np.abs(x.data), (x,), backward)


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp values to ``[lo, hi]``; gradient is zero outside the interval."""
    mask = (x.data >= lo) & (x.data <= hi)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * mask)

    return Tensor._make(np.clip(x.data, lo, hi), (x,), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties send the gradient to the first argument."""
    take_a = a.data >= b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g * take_a, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(g * ~take_a, b.shape))

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward)


def _logsumexp(x: np.ndarray, axis: int) -> np.ndarray:
    m = x.max(axis=axis, keepdims=True)
    return m + np.log(np.exp(x - m).sum(axis=axis, keepdims=True))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable, subtracts the max)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            dot = (g * out).sum(axis=axis, keepdims=True)
            x._accumulate(out * (g - dot))

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable log-sum-exp formulation)."""
    out = x.data - _logsumexp(x.data, axis)
    soft = np.exp(out)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale by ``1/(1-p)``.

    The paper deliberately trains *without* dropout (§IV-A); we provide it
    for completeness and ablations.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * keep)

    return Tensor._make(x.data * keep, (x,), backward)


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``; backward splits the gradient."""
    if not tensors:
        raise ShapeError("concatenate() of an empty list")
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                idx: list[slice] = [slice(None)] * g.ndim
                idx[axis] = slice(lo, hi)
                t._accumulate(g[tuple(idx)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    if not tensors:
        raise ShapeError("stack() of an empty list")

    def backward(g: np.ndarray) -> None:
        slabs = np.moveaxis(g, axis, 0)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(slab)

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


def pad2d(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the trailing two (spatial) axes of an NCHW tensor."""
    if pad == 0:
        return x
    if x.ndim != 4:
        raise ShapeError(f"pad2d expects NCHW input, got ndim={x.ndim}")
    width = ((0, 0), (0, 0), (pad, pad), (pad, pad))

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g[:, :, pad:-pad, pad:-pad])

    return Tensor._make(np.pad(x.data, width), (x,), backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add backward.

    Provided for the NLP-flavoured workloads the paper lists as future work
    (§V); exercised by the time-series/NLP example.
    """
    indices = np.asarray(indices)

    def backward(g: np.ndarray) -> None:
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices, g)
            table._accumulate(full)

    return Tensor._make(table.data[indices], (table,), backward)
