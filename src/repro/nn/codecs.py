"""Transfer codecs: how a parameter/gradient vector crosses the wire.

The paper relies on BOINC's server-side gzip (§III-B); this module goes
further with the ROADMAP's codec plane: fp16/int8 quantization with
per-tensor scales, top-k sparsification, and XOR/delta encoding against a
reference vector the receiver already holds.  A codec answers two
questions for one flat float64 vector:

* **how many bytes does it cost on the wire?** — the simulation's
  transfer model charges for :attr:`Encoded.nbytes`; measured sizes
  (zlib over the actual encoded bytes) keep the accounting honest;
* **what does the receiver actually get?** — :meth:`Codec.decode`
  returns the reconstructed vector.  For lossy codecs this differs from
  the input, and the simulation trains on the *decoded* copy, so the
  accuracy effect of quantization is real, not assumed.

Every codec is deterministic: identical input vectors produce identical
encoded forms, byte sizes and decoded vectors, which is what lets
replicated workunits reach bit-exact quorums and golden-digest tests pin
whole runs.  Codecs never hold state — error-feedback residuals and
delta chains live in the runner's :class:`~repro.core.codec_plane.ParamCodecPlane`,
where they can be checkpointed.

Wire-format accounting (simulated; payloads travel by reference):

==========  ===========================================================
``zlib``    measured zlib size of the raw float64 bytes (the baseline)
``fp16``    measured zlib size of the float16 cast (≤ 2 bytes/scalar)
``int8``    measured zlib size of the int8 codes + one float32 scale
            per tensor (per-tensor maxabs/127 scaling)
``topk``    k × (4-byte index + value bytes) + 16-byte header; value
            bytes follow ``quant`` (fp32/fp16/int8)
``delta``   measured zlib size of the XOR of the two vectors' float64
            bit patterns (lossless; falls back to ``zlib`` without a
            reference)
==========  ===========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, SerializationError

__all__ = [
    "CODEC_NAMES",
    "VALUE_QUANTS",
    "Encoded",
    "Codec",
    "ZlibCodec",
    "Fp16Codec",
    "Int8Codec",
    "TopKCodec",
    "DeltaCodec",
    "make_codec",
]

CODEC_NAMES = ("zlib", "fp16", "int8", "topk", "delta")
VALUE_QUANTS = ("fp32", "fp16", "int8")

_FP16_MAX = 65504.0
# Conservative per-element fp16 round-trip bound: half-ulp relative error
# doubled, plus the subnormal quantum for values near zero.
_FP16_RTOL = 2.0**-10
_FP16_ATOL = 1e-7


def _as_f64(vec: np.ndarray) -> np.ndarray:
    arr = np.asarray(vec, dtype=np.float64)
    if arr.ndim != 1:
        raise SerializationError("codecs operate on flat 1-D vectors")
    if not arr.flags["C_CONTIGUOUS"]:
        arr = np.ascontiguousarray(arr)
    return arr


def _segments(layout, n: int) -> tuple[tuple[int, int], ...]:
    """(offset, size) per tensor from a StateLayout, or one whole-vector
    segment when no layout is given."""
    if layout is None:
        return ((0, n),)
    if layout.total_size != n:
        raise SerializationError(
            f"layout covers {layout.total_size} scalars, vector has {n}"
        )
    return tuple(zip(layout.offsets, layout.sizes))


@dataclass(frozen=True)
class Encoded:
    """One encoded vector: wire cost + whatever ``decode`` needs.

    ``data`` is codec-specific and travels by reference (the simulation
    never serializes payloads — see DESIGN.md §5); ``nbytes`` is what the
    transfer model charges for.
    """

    codec: str
    nbytes: int
    raw_nbytes: int
    data: object


class Codec:
    """Deterministic, stateless encoder/decoder for flat float64 vectors."""

    name: str = "base"
    lossy: bool = False

    def encode(self, vec: np.ndarray, layout=None) -> Encoded:
        raise NotImplementedError

    def decode(self, encoded: Encoded) -> np.ndarray:
        raise NotImplementedError

    def tolerance(self, vec: np.ndarray, layout=None) -> np.ndarray:
        """Per-element bound on ``|decode(encode(vec)) - vec|``.

        Zero for lossless codecs; lossy codecs declare their guarantee
        here and the property tests hold them to it.
        """
        return np.zeros(np.asarray(vec).size)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}()"


class ZlibCodec(Codec):
    """The baseline: today's compressed transfer, with a measured size.

    Lossless — ``decode`` returns the input vector itself (payloads pass
    by reference on the simulated wire), and the wire size is the real
    zlib size of the float64 bytes, capped at raw (an incompressible
    vector is served uncompressed).
    """

    name = "zlib"
    lossy = False

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, vec: np.ndarray, layout=None) -> Encoded:
        from .serialization import compressed_size

        vec = _as_f64(vec)
        wire = min(compressed_size(vec, self.level), vec.nbytes)
        return Encoded(self.name, wire, vec.nbytes, vec)

    def decode(self, encoded: Encoded) -> np.ndarray:
        return encoded.data


class Fp16Codec(Codec):
    """Half-precision cast, zlib'd: ≤ 2 bytes per scalar on the wire.

    Values are clipped to the fp16 range before the cast (training
    parameters never approach ±65504 in practice, but the codec must not
    emit infinities the validator would reject).
    """

    name = "fp16"
    lossy = True

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, vec: np.ndarray, layout=None) -> Encoded:
        from .serialization import compressed_size

        vec = _as_f64(vec)
        q = np.clip(vec, -_FP16_MAX, _FP16_MAX).astype(np.float16)
        wire = min(compressed_size(q, self.level), q.nbytes)
        return Encoded(self.name, wire, vec.nbytes, q)

    def decode(self, encoded: Encoded) -> np.ndarray:
        return encoded.data.astype(np.float64)

    def tolerance(self, vec: np.ndarray, layout=None) -> np.ndarray:
        vec = np.asarray(vec, dtype=np.float64)
        clipped = np.clip(vec, -_FP16_MAX, _FP16_MAX)
        return np.abs(clipped) * _FP16_RTOL + np.abs(vec - clipped) + _FP16_ATOL


class Int8Codec(Codec):
    """Linear int8 quantization with one scale per tensor.

    Per-tensor scaling (via the StateLayout's offsets) keeps small-valued
    tensors — biases, batch-norm shifts — from being crushed by a single
    global scale.  Each tensor quantizes to ``round(x / (maxabs/127))``;
    an all-zero tensor encodes with scale 0.  The wire charges the zlib'd
    codes plus one float32 scale per tensor.
    """

    name = "int8"
    lossy = True

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def encode(self, vec: np.ndarray, layout=None) -> Encoded:
        from .serialization import compressed_size

        vec = _as_f64(vec)
        segments = _segments(layout, vec.size)
        scales = np.zeros(len(segments))
        codes = np.zeros(vec.size, dtype=np.int8)
        for i, (offset, size) in enumerate(segments):
            chunk = vec[offset : offset + size]
            maxabs = float(np.abs(chunk).max()) if size else 0.0
            if maxabs == 0.0:
                continue
            scale = maxabs / 127.0
            scales[i] = scale
            codes[offset : offset + size] = np.clip(
                np.round(chunk / scale), -127, 127
            ).astype(np.int8)
        wire = min(compressed_size(codes, self.level), codes.nbytes)
        wire += 4 * len(segments)
        return Encoded(self.name, wire, vec.nbytes, (codes, scales, segments))

    def decode(self, encoded: Encoded) -> np.ndarray:
        codes, scales, segments = encoded.data
        out = codes.astype(np.float64)
        for scale, (offset, size) in zip(scales, segments):
            if scale != 0.0:
                out[offset : offset + size] *= scale
        return out

    def tolerance(self, vec: np.ndarray, layout=None) -> np.ndarray:
        vec = np.asarray(vec, dtype=np.float64)
        bound = np.zeros(vec.size)
        for offset, size in _segments(layout, vec.size):
            chunk = vec[offset : offset + size]
            maxabs = float(np.abs(chunk).max()) if size else 0.0
            # Half a quantization step, with float slack.
            bound[offset : offset + size] = maxabs / 253.0 + 1e-12
        return bound


class TopKCodec(Codec):
    """Keep the k largest-magnitude entries; everything else is zero.

    The classic gradient-sparsification codec: the upload carries
    ``k = ceil(fraction * n)`` (index, value) pairs.  Selection is a
    stable argsort on magnitude, so ties break by position and the
    encoded form is deterministic.  Values are optionally quantized
    (``quant`` ∈ fp32/fp16/int8 — int8 uses one global scale over the
    selected values).  The dropped mass is what the codec plane's
    error-feedback residual carries to the next upload.
    """

    name = "topk"
    lossy = True

    def __init__(self, fraction: float = 0.01, quant: str = "fp32") -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("topk fraction must be in (0, 1]")
        if quant not in VALUE_QUANTS:
            raise ConfigurationError(
                f"unknown topk value quant {quant!r} (choices: {VALUE_QUANTS})"
            )
        self.fraction = fraction
        self.quant = quant

    def _k(self, n: int) -> int:
        return max(1, min(n, int(math.ceil(self.fraction * n))))

    def encode(self, vec: np.ndarray, layout=None) -> Encoded:
        vec = _as_f64(vec)
        k = self._k(vec.size)
        idx = np.argsort(-np.abs(vec), kind="stable")[:k]
        idx = np.sort(idx)
        values = vec[idx]
        if self.quant == "fp16":
            decoded = (
                np.clip(values, -_FP16_MAX, _FP16_MAX)
                .astype(np.float16)
                .astype(np.float64)
            )
            value_bytes = 2
        elif self.quant == "int8":
            maxabs = float(np.abs(values).max()) if k else 0.0
            scale = maxabs / 127.0
            if scale > 0.0:
                decoded = (
                    np.clip(np.round(values / scale), -127, 127).astype(np.int8)
                    .astype(np.float64)
                    * scale
                )
            else:
                decoded = np.zeros(k)
            value_bytes = 1
        else:
            decoded = values.astype(np.float32).astype(np.float64)
            value_bytes = 4
        wire = k * (4 + value_bytes) + 16
        return Encoded(self.name, wire, vec.nbytes, (vec.size, idx, decoded))

    def decode(self, encoded: Encoded) -> np.ndarray:
        n, idx, decoded = encoded.data
        out = np.zeros(n)
        out[idx] = decoded
        return out

    def tolerance(self, vec: np.ndarray, layout=None) -> np.ndarray:
        # The dropped entries are the error: bounded by the k-th largest
        # magnitude; kept entries carry only their value-quant error.
        vec = np.asarray(vec, dtype=np.float64)
        return np.abs(vec) + 1e-12


class DeltaCodec(Codec):
    """XOR of float64 bit patterns against a reference, zlib'd.

    Consecutive parameter publishes share most of their bits, so the XOR
    stream is far more compressible than either vector alone.  Lossless:
    the receiver holds the reference (its cached sticky copy, or the
    base version it downloaded) and reconstructs exactly.  Without a
    reference the codec degrades to the zlib baseline.
    """

    name = "delta"
    lossy = False

    def __init__(self, level: int = 6) -> None:
        self.level = level
        self._zlib = ZlibCodec(level)

    def encode(self, vec: np.ndarray, layout=None, reference=None) -> Encoded:
        from .serialization import compressed_size

        vec = _as_f64(vec)
        if reference is None:
            base = self._zlib.encode(vec)
            return Encoded(self.name, base.nbytes, base.raw_nbytes, vec)
        reference = _as_f64(reference)
        if reference.size != vec.size:
            raise SerializationError(
                f"delta reference has {reference.size} scalars, vector {vec.size}"
            )
        xor = np.bitwise_xor(vec.view(np.uint64), reference.view(np.uint64))
        wire = min(compressed_size(xor, self.level), vec.nbytes)
        return Encoded(self.name, wire, vec.nbytes, vec)

    def decode(self, encoded: Encoded) -> np.ndarray:
        return encoded.data


def make_codec(
    name: str,
    topk_fraction: float = 0.01,
    quant: str = "fp32",
    level: int = 6,
) -> Codec:
    """Codec factory used by the job config and the CLI flags."""
    if name == "zlib":
        return ZlibCodec(level)
    if name == "fp16":
        return Fp16Codec(level)
    if name == "int8":
        return Int8Codec(level)
    if name == "topk":
        return TopKCodec(topk_fraction, quant)
    if name == "delta":
        return DeltaCodec(level)
    raise ConfigurationError(
        f"unknown codec {name!r} (choices: {', '.join(CODEC_NAMES)})"
    )
