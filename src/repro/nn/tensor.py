"""Reverse-mode automatic differentiation on NumPy arrays.

This is the foundation of the :mod:`repro.nn` deep-learning substrate.  The
paper trained its models with TensorFlow; no deep-learning framework is
available in this environment, so we implement the minimum viable production
engine: a :class:`Tensor` wrapping an ``ndarray`` plus a dynamically built
tape of :class:`Op` nodes, walked in reverse topological order by
:meth:`Tensor.backward`.

Design notes (following the HPC guides):

* all array math is vectorized NumPy; the graph bookkeeping is O(#ops), not
  O(#elements);
* gradients accumulate **in place** (``+=``) into pre-allocated buffers;
* broadcasting in forward ops is undone in backward via
  :func:`unbroadcast`, so arbitrary NumPy-style broadcasting is supported.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import GradientError

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast"]


_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new ops record themselves on the autograd tape."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``.

    NumPy broadcasting may have (a) prepended axes and (b) stretched
    length-1 axes; the adjoint of broadcasting is summation over exactly
    those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched length-1 axes, keeping dims.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """An ``ndarray`` with optional gradient tracking.

    Parameters
    ----------
    data:
        Anything convertible to a float64/float32 array.  Arrays are used
        as-is (no copy) when their dtype is already floating.
    requires_grad:
        Whether to allocate a ``.grad`` buffer and participate in backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):  # pragma: no cover - defensive
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    def item(self) -> float:
        """The value of a scalar tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result node, recording the tape edge when grad is on."""
        parents = tuple(parents)
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the gradient buffer (keeps the allocation when possible)."""
        if self.grad is not None:
            self.grad.fill(0.0)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        """
        if not self.requires_grad:
            raise GradientError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise GradientError(
                f"gradient shape {grad.shape} does not match output {self.shape}"
            )

        order = _topological_order(self)
        self._accumulate(grad)
        for node in order:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic — each op closes over its inputs and defines its adjoint.
    # ------------------------------------------------------------------
    def _coerce(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(g, a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(g, b.shape))

        return Tensor._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(-g)

        return Tensor._make(-a.data, (a,), backward)

    def __sub__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(g * b.data, a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(g * a.data, b.shape))

        return Tensor._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(g / b.data, a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(-g * a.data / (b.data * b.data), b.shape))

        return Tensor._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        a = self
        out_data = a.data**exponent

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(g * exponent * a.data ** (exponent - 1))

        return Tensor._make(out_data, (a,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                ga = g @ b.data.swapaxes(-1, -2)
                a._accumulate(unbroadcast(ga, a.shape))
            if b.requires_grad:
                gb = a.data.swapaxes(-1, -2) @ g
                b._accumulate(unbroadcast(gb, b.shape))

        return Tensor._make(a.data @ b.data, (a, b), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """View with a new shape; gradient reshapes back."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.data.shape

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(g.reshape(old_shape))

        return Tensor._make(a.data.reshape(shape), (a,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (reversed order by default); adjoint un-permutes."""
        a = self
        if not axes:
            axes = tuple(reversed(range(a.ndim)))
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(g.transpose(inverse))

        return Tensor._make(a.data.transpose(axes), (a,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes by default); adjoint broadcasts."""
        a = self

        def backward(g: np.ndarray) -> None:
            if not a.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            a._accumulate(np.broadcast_to(grad, a.shape).copy())

        return Tensor._make(a.data.sum(axis=axis, keepdims=keepdims), (a,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (sum scaled by 1/count)."""
        a = self
        if axis is None:
            count = a.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([a.shape[ax] for ax in axes]))
        return a.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def __getitem__(self, idx: object) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                full = np.zeros_like(a.data)
                np.add.at(full, idx, g)
                a._accumulate(full)

        return Tensor._make(a.data[idx], (a,), backward)

    # Comparisons return plain bool arrays (no gradient flows through them).
    def __gt__(self, other: "Tensor | float") -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other: "Tensor | float") -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return tape nodes reachable from ``root`` in reverse-topological order.

    Iterative DFS (deep graphs — e.g. hundreds of residual layers — would
    overflow the recursion limit with a recursive walk).
    """
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order
