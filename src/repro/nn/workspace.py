"""Per-layer workspace arena: reusable scratch buffers for NN kernels.

The conv/pooling kernels materialise several large intermediates every
step — the padded input, the im2col column matrix, the GEMM output, the
backward column gradients and the col2im scatter target.  Their shapes
are identical on every step of a training run, so each layer owns a
:class:`Workspace` and the kernels write into its buffers with
``np.copyto`` / ``out=`` instead of allocating.

Safety model (why reuse cannot corrupt the autograd graph):

* every array a workspace buffer backs is consumed within one
  forward+backward of its owning layer — ``Tensor._accumulate`` adds
  gradients into tensor-owned buffers (never keeps a reference), and the
  tensor *data* flowing through the graph is still freshly allocated by
  the kernels;
* workspaces are **per layer instance**, so two same-shaped layers never
  share buffers, and a layer's buffers are only rewritten at its next
  forward — after every consumer of the previous step finished.

Results are bit-identical with workspaces on or off: the kernels execute
the same elementwise/GEMM operations in the same order either way, only
the destination of each intermediate changes.  ``use_workspaces(False)``
turns the arena off globally (the determinism tests assert the
equivalence).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace", "use_workspaces", "workspaces_enabled"]

_ENABLED = True


def workspaces_enabled() -> bool:
    """Whether layers currently hand their workspace to the kernels."""
    return _ENABLED


class use_workspaces:
    """Context manager / switch: enable or disable workspace reuse.

    ``with use_workspaces(False): ...`` runs the enclosed code with every
    kernel allocating exactly as the historical implementation did.
    """

    def __init__(self, enabled: bool) -> None:
        global _ENABLED
        self._prev = _ENABLED
        _ENABLED = bool(enabled)

    def __enter__(self) -> "use_workspaces":
        return self

    def __exit__(self, *exc: object) -> None:
        global _ENABLED
        _ENABLED = self._prev


class Workspace:
    """An arena of reusable ndarray buffers keyed by (tag, shape, dtype).

    ``buffer`` returns an *uninitialised* buffer (callers fully overwrite
    it); ``zeros`` clears it first; ``arange_rows`` caches the row-index
    vectors fancy-indexing kernels need.  Buffers for different shapes
    coexist (a layer sees full and remainder batches), so lookups are
    exact-shape and never slice.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def buffer(
        self, tag: str, shape: tuple[int, ...], dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def zeros(
        self, tag: str, shape: tuple[int, ...], dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        buf = self.buffer(tag, shape, dtype)
        buf.fill(0)
        return buf

    def arange_rows(self, n: int) -> np.ndarray:
        """Cached ``np.arange(n)`` (row indices for fancy indexing)."""
        key = ("arange", (n,), np.dtype(np.intp))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.arange(n)
            self._buffers[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every buffer (frees the memory)."""
        self._buffers.clear()
