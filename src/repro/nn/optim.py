"""Optimizers and learning-rate schedules.

The paper's clients train with **Adam at a constant learning rate of 0.001,
no momentum tweaks, no weight decay** (§IV-A); plain SGD (with optional
momentum) is the comparison workhorse and the single-instance baseline's
optimizer option.  All updates are in place on the parameter buffers — the
parameter arrays keep their identity, which matters because model state
dicts alias them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .tensor import Tensor

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "CosineLR",
    "WarmupLR",
    "clip_grad_norm",
]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most
    ``max_norm``; returns the pre-clip norm.

    Standard protection for recurrent models (exploding BPTT gradients);
    parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class LRSchedule:
    """Maps a step index to a learning rate."""

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        """Learning rate at the given 0-based step."""
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """The paper's setting: constant learning rate (0.001 for Adam)."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def lr_at(self, step: int) -> float:
        return self.lr


class StepDecayLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ConfigurationError("step_size must be positive")
        self.lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.lr * self.gamma ** (step // self.step_size)


class CosineLR(LRSchedule):
    """Cosine annealing from ``lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ConfigurationError("total_steps must be positive")
        self.lr = lr
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        frac = min(step, self.total_steps) / self.total_steps
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (1 + np.cos(np.pi * frac))


class WarmupLR(LRSchedule):
    """Linear warmup to a base schedule's rate over ``warmup_steps``.

    Useful when distributed merging starts from aggressive client updates;
    wraps any other schedule.
    """

    def __init__(self, base: LRSchedule, warmup_steps: int) -> None:
        if warmup_steps < 1:
            raise ConfigurationError("warmup_steps must be >= 1")
        self.base = base
        self.warmup_steps = warmup_steps

    def lr_at(self, step: int) -> float:
        target = self.base.lr_at(step)
        if step >= self.warmup_steps:
            return target
        return target * (step + 1) / self.warmup_steps


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Iterable[Tensor], schedule: LRSchedule) -> None:
        self.parameters: Sequence[Tensor] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer got an empty parameter list")
        self.schedule = schedule
        self.step_count = 0

    @property
    def lr(self) -> float:
        return self.schedule.lr_at(self.step_count)

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on params."""
        lr = self.lr
        self.step_count += 1
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            self._update(i, p, lr)

    def _update(self, index: int, p: Tensor, lr: float) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float | LRSchedule = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        schedule = lr if isinstance(lr, LRSchedule) else ConstantLR(lr)
        super().__init__(parameters, schedule)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}
        self._scratch: dict[int, np.ndarray] = {}

    def _update(self, index: int, p: Tensor, lr: float) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        scratch = self._scratch.get(index)
        if scratch is None:
            scratch = np.empty_like(p.data)
            self._scratch[index] = scratch
        # lr*grad lands in scratch instead of a fresh temporary; same
        # multiply, same subtract, bit-identical result.
        np.multiply(grad, lr, out=scratch)
        if self.momentum:
            v = self._velocity.get(index)
            if v is None:
                v = np.zeros_like(p.data)
                self._velocity[index] = v
            v *= self.momentum
            v -= scratch
            p.data += v
        else:
            p.data -= scratch


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the paper's client-side optimizer.

    Defaults match the paper: lr=0.001, standard betas, no weight decay.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float | LRSchedule = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        schedule = lr if isinstance(lr, LRSchedule) else ConstantLR(lr)
        super().__init__(parameters, schedule)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._scratch: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _update(self, index: int, p: Tensor, lr: float) -> None:
        """One Adam step, fully in place.

        Every intermediate lands in one of two per-parameter scratch
        buffers instead of a fresh temporary (the historical expression
        allocated eight).  The operations and their order are unchanged,
        so the updates are bit-identical to the allocating form.
        """
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        m = self._m.get(index)
        if m is None:
            m = np.zeros_like(p.data)
            v = np.zeros_like(p.data)
            self._m[index] = m
            self._v[index] = v
            self._scratch[index] = (np.empty_like(p.data), np.empty_like(p.data))
        else:
            v = self._v[index]
        s1, s2 = self._scratch[index]
        t = self.step_count  # step() already incremented: t >= 1
        m *= self.beta1
        np.multiply(grad, 1 - self.beta1, out=s1)  # (1-beta1)*grad
        m += s1
        v *= self.beta2
        np.multiply(grad, 1 - self.beta2, out=s1)  # ((1-beta2)*grad)*grad
        s1 *= grad
        v += s1
        np.divide(m, 1 - self.beta1**t, out=s1)  # m_hat
        np.divide(v, 1 - self.beta2**t, out=s2)  # v_hat
        np.sqrt(s2, out=s2)
        s2 += self.eps
        s1 *= lr  # (lr*m_hat) / (sqrt(v_hat)+eps)
        s1 /= s2
        p.data -= s1
