"""Model zoo and declarative model specs.

The paper ships a model *architecture file* (Keras ``.json``, 269 KB) with
each workunit, alongside a parameter file; clients rebuild the model from
the spec and load the parameters.  We mirror that: :class:`ModelSpec` is a
small JSON-serializable description, and :func:`build_model` deterministically
constructs the network from it (given an RNG for initialization).

Three architectures cover the reproduction:

* :func:`make_mlp` — fast classifier used by the large parameter sweeps;
* :func:`make_convnet` — small CNN for image-shaped inputs;
* :func:`make_resnetv2` — a pre-activation ResNetV2 in the spirit of the
  paper's 552-layer model, at configurable (laptop-scale) depth.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    Module,
    ReLU,
    Residual,
    Sequential,
    Tanh,
)
from .tensor import Tensor

__all__ = [
    "ModelSpec",
    "build_model",
    "make_mlp",
    "make_convnet",
    "make_resnetv2",
    "paper_scale_resnet_spec",
    "PreActBlock",
]


@dataclass(frozen=True)
class ModelSpec:
    """Declarative architecture description (the ``.json`` model file).

    ``kind`` selects the factory; ``config`` holds its keyword arguments.
    """

    kind: str
    config: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical JSON encoding (the workunit's model file contents)."""
        return json.dumps({"kind": self.kind, "config": self.config}, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ModelSpec":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return ModelSpec(kind=payload["kind"], config=payload["config"])


def build_model(spec: ModelSpec, rng: np.random.Generator) -> Module:
    """Instantiate the architecture described by ``spec``.

    The same spec + the same RNG state yields bit-identical initial weights,
    which the work generator relies on when seeding epoch-0 parameters.
    """
    factories = {
        "mlp": make_mlp,
        "convnet": make_convnet,
        "resnetv2": make_resnetv2,
    }
    try:
        factory = factories[spec.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown model kind {spec.kind!r}; known: {sorted(factories)}"
        ) from None
    return factory(rng=rng, **spec.config)


def make_mlp(
    rng: np.random.Generator,
    in_features: int = 48,
    hidden: tuple[int, ...] | list[int] = (64, 64),
    num_classes: int = 10,
    activation: str = "relu",
    batch_norm: bool = False,
) -> Module:
    """Multi-layer perceptron classifier over flat feature vectors."""
    if in_features <= 0 or num_classes <= 0:
        raise ConfigurationError("in_features and num_classes must be positive")
    act: type[Module] = {"relu": ReLU, "tanh": Tanh}.get(activation)  # type: ignore[assignment]
    if act is None:
        raise ConfigurationError(f"unknown activation {activation!r}")
    layers: list[Module] = []
    prev = in_features
    for width in hidden:
        layers.append(Dense(prev, width, rng))
        if batch_norm:
            layers.append(BatchNorm(width))
        layers.append(act())
        prev = width
    layers.append(Dense(prev, num_classes, rng))
    return Sequential(*layers)


def make_convnet(
    rng: np.random.Generator,
    in_channels: int = 3,
    image_size: int = 8,
    channels: tuple[int, ...] | list[int] = (16, 32),
    num_classes: int = 10,
) -> Module:
    """Small VGG-style CNN: conv-BN-ReLU stacks with stride-2 downsampling."""
    layers: list[Module] = []
    prev = in_channels
    size = image_size
    for i, ch in enumerate(channels):
        stride = 2 if i > 0 else 1
        layers.append(Conv2D(prev, ch, 3, rng, stride=stride, padding=1, bias=False))
        layers.append(BatchNorm(ch))
        layers.append(ReLU())
        if stride == 2:
            size = (size + 1) // 2
        prev = ch
    layers.append(GlobalAvgPool2D())
    layers.append(Dense(prev, num_classes, rng))
    return Sequential(*layers)


def paper_scale_resnet_spec() -> ModelSpec:
    """A ResNetV2 spec in the paper's weight class (~5M parameters).

    The paper's model has 4,972,746 total parameters across 552 layers;
    this configuration lands within a few percent of that count with the
    same pre-activation block family (depth is shallower — parameters, not
    layer count, are what size the parameter files and the VC-ASGD merge).
    """
    return ModelSpec(
        "resnetv2",
        {
            "in_channels": 3,
            "num_classes": 10,
            "stage_channels": [69, 138, 276],
            "blocks_per_stage": 3,
        },
    )


class PreActBlock(Module):
    """Pre-activation residual block (BN → ReLU → conv, twice) — ResNetV2.

    He et al.'s "identity mappings" ordering, which is what distinguishes
    ResNetV2 (the paper's model) from the original ResNet.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
    ) -> None:
        super().__init__()
        body = Sequential(
            BatchNorm(in_channels),
            ReLU(),
            Conv2D(in_channels, out_channels, 3, rng, stride=stride, padding=1, bias=False),
            BatchNorm(out_channels),
            ReLU(),
            Conv2D(out_channels, out_channels, 3, rng, stride=1, padding=1, bias=False),
        )
        shortcut: Module | None = None
        if stride != 1 or in_channels != out_channels:
            shortcut = Conv2D(in_channels, out_channels, 1, rng, stride=stride, bias=False)
        self.block = Residual(body, shortcut)

    def forward(self, x: Tensor) -> Tensor:
        return self.block(x)


def make_resnetv2(
    rng: np.random.Generator,
    in_channels: int = 3,
    num_classes: int = 10,
    stage_channels: tuple[int, ...] | list[int] = (16, 32, 64),
    blocks_per_stage: int = 2,
) -> Module:
    """Pre-activation ResNetV2 for small images (CIFAR-style stages).

    The paper used 552 layers / ~5M parameters; depth here is configurable
    so tests and benches stay laptop-scale while the architecture family is
    the same.
    """
    if blocks_per_stage <= 0:
        raise ConfigurationError("blocks_per_stage must be positive")
    layers: list[Module] = [
        Conv2D(in_channels, stage_channels[0], 3, rng, stride=1, padding=1, bias=False)
    ]
    prev = stage_channels[0]
    for stage, ch in enumerate(stage_channels):
        for block in range(blocks_per_stage):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(PreActBlock(prev, ch, rng, stride=stride))
            prev = ch
    layers.extend(
        [BatchNorm(prev), ReLU(), GlobalAvgPool2D(), Dense(prev, num_classes, rng)]
    )
    return Sequential(*layers)
