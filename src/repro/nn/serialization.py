"""Parameter (de)serialization — the ``.h5``/``.npz`` files of the paper.

The paper ships parameters as a compressed ``.h5`` file (21.2 MB for the
~5M-parameter ResNetV2) and data shards as ``.npz`` (3.9 MB each).  Two
representations are provided:

* **bytes** — a compressed ``.npz`` blob, used wherever a component needs a
  realistic payload size (KV store values, web-server file transfers);
* **flat vector** — all parameters packed into one contiguous ``float64``
  vector, used by the parameter-update rules so that Eq. (1) is a pair of
  vectorized in-place BLAS-1 operations rather than a per-layer Python loop.

The flat codec is driven by :class:`StateLayout` — per-key offsets, shapes
and sizes precomputed once per state-dict *signature* and cached, so the
hot path (one pack + one unpack per client result) never re-sorts keys,
never re-derives shapes, and allocates nothing beyond what the caller
asks for.  The legacy helpers (:func:`state_to_vector` and friends)
delegate to the cached layout and keep their exact historical semantics.
"""

from __future__ import annotations

import hashlib
import io
import zlib
from collections import OrderedDict

import numpy as np

from ..errors import SerializationError

__all__ = [
    "StateLayout",
    "state_to_bytes",
    "state_from_bytes",
    "state_to_vector",
    "vector_to_state",
    "state_num_scalars",
    "state_checksum",
    "gradients_to_vector",
    "GradientAccumulator",
    "compressed_size",
    "compressed_size_cache_stats",
    # codec plane re-exports (defined in repro.nn.codecs; the ROADMAP
    # names repro.nn.serialization as the codec home, so both paths work)
    "CODEC_NAMES",
    "VALUE_QUANTS",
    "Encoded",
    "Codec",
    "ZlibCodec",
    "Fp16Codec",
    "Int8Codec",
    "TopKCodec",
    "DeltaCodec",
    "make_codec",
]


def _as_f64_contiguous(value: np.ndarray) -> np.ndarray:
    """Float64 C-contiguous view of ``value`` — a copy only when needed."""
    arr = value if isinstance(value, np.ndarray) else np.asarray(value)
    if arr.dtype == np.float64 and arr.flags["C_CONTIGUOUS"]:
        return arr
    return np.ascontiguousarray(arr, dtype=np.float64)


class StateLayout:
    """Cached flat-vector codec for one state-dict signature.

    Precomputes the sorted key order, per-key shapes/sizes and vector
    offsets so pack/unpack are straight ``memcpy``-style loops with zero
    per-call bookkeeping.  Layouts are immutable and shared: obtain one
    via :meth:`for_state`, which caches by signature (the sorted
    ``(key, shape)`` tuple), so every runner, rule and checkpoint touching
    the same model shape reuses a single instance.

    Aliasing contract: :meth:`views` returns *views into the vector* —
    writes through them mutate the vector and vice versa.  :meth:`unpack`
    (the safe default) returns fresh copies, matching the historical
    :func:`vector_to_state`.
    """

    __slots__ = ("keys", "shapes", "sizes", "offsets", "total_size", "signature")

    def __init__(self, template: dict[str, np.ndarray]) -> None:
        if not template:
            raise SerializationError("cannot build a layout for an empty state dict")
        self.keys: tuple[str, ...] = tuple(sorted(template))
        shapes = []
        sizes = []
        offsets = []
        offset = 0
        for key in self.keys:
            shape = np.asarray(template[key]).shape
            size = int(np.prod(shape)) if shape else 1
            shapes.append(shape)
            sizes.append(size)
            offsets.append(offset)
            offset += size
        self.shapes: tuple[tuple[int, ...], ...] = tuple(shapes)
        self.sizes: tuple[int, ...] = tuple(sizes)
        self.offsets: tuple[int, ...] = tuple(offsets)
        self.total_size: int = offset
        self.signature: tuple[tuple[str, tuple[int, ...]], ...] = tuple(
            zip(self.keys, self.shapes)
        )

    # -- construction / cache -------------------------------------------------

    _CACHE: "OrderedDict[tuple, StateLayout]" = OrderedDict()
    _CACHE_MAX = 64

    @classmethod
    def for_state(cls, template: dict[str, np.ndarray]) -> "StateLayout":
        """The shared layout for ``template``'s signature (cached)."""
        if not template:
            raise SerializationError("cannot build a layout for an empty state dict")
        signature = tuple(
            (key, np.asarray(template[key]).shape) for key in sorted(template)
        )
        layout = cls._CACHE.get(signature)
        if layout is None:
            layout = cls(template)
            cls._CACHE[signature] = layout
            while len(cls._CACHE) > cls._CACHE_MAX:
                cls._CACHE.popitem(last=False)
        else:
            cls._CACHE.move_to_end(signature)
        return layout

    # -- vector <-> state ----------------------------------------------------

    def empty(self) -> np.ndarray:
        """An uninitialised flat vector of the right size."""
        return np.empty(self.total_size)

    def zeros(self) -> np.ndarray:
        """A zero flat vector of the right size."""
        return np.zeros(self.total_size)

    def pack(self, state: dict[str, np.ndarray], out: np.ndarray | None = None) -> np.ndarray:
        """Pack ``state`` into a flat float64 vector.

        With ``out`` given, writes into it (no allocation) and returns it;
        otherwise allocates a fresh vector.  Only per-key *sizes* must
        match the layout — exactly the historical ``state_to_vector``
        contract, which ravels each entry.
        """
        if out is None:
            out = np.empty(self.total_size)
        elif out.shape != (self.total_size,):
            raise SerializationError(
                f"pack out buffer has shape {out.shape}, "
                f"expected ({self.total_size},)"
            )
        for key, offset, size in zip(self.keys, self.offsets, self.sizes):
            try:
                value = state[key]
            except KeyError:
                raise SerializationError(
                    f"state dict is missing key {key!r} required by layout"
                ) from None
            flat = np.asarray(value, dtype=np.float64).ravel()
            if flat.size != size:
                raise SerializationError(
                    f"entry {key!r} has {flat.size} scalars, layout expects {size}"
                )
            np.copyto(out[offset : offset + size], flat)
        return out

    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.size != self.total_size:
            raise SerializationError(
                f"vector of size {vector.size} does not match template "
                f"({self.total_size} scalars)"
            )
        return vector

    def unpack(self, vector: np.ndarray) -> dict[str, np.ndarray]:
        """Unpack into freshly-copied arrays shaped like the template."""
        vector = self._check_vector(vector)
        return {
            key: vector[offset : offset + size].reshape(shape).copy()
            for key, offset, size, shape in zip(
                self.keys, self.offsets, self.sizes, self.shapes
            )
        }

    def views(self, vector: np.ndarray) -> dict[str, np.ndarray]:
        """Unpack into *views* of ``vector`` — zero-copy.

        Writes through a view mutate the vector (and vice versa); callers
        must not let a view outlive the vector's logical lifetime.  Used
        on read-only paths (evaluation, checksum) where the historical
        per-key copy was pure overhead.
        """
        vector = self._check_vector(vector)
        return {
            key: vector[offset : offset + size].reshape(shape)
            for key, offset, size, shape in zip(
                self.keys, self.offsets, self.sizes, self.shapes
            )
        }

    def unpack_into(
        self, vector: np.ndarray, dest: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Copy ``vector`` into preallocated arrays in ``dest`` (by key)."""
        vector = self._check_vector(vector)
        for key, offset, size, shape in zip(
            self.keys, self.offsets, self.sizes, self.shapes
        ):
            target = dest[key]
            if target.shape != shape:
                raise SerializationError(
                    f"destination for {key!r} has shape {target.shape}, "
                    f"layout expects {shape}"
                )
            np.copyto(target, vector[offset : offset + size].reshape(shape))
        return dest

    # -- gradients -----------------------------------------------------------

    def accumulate(
        self,
        named_grads: dict[str, np.ndarray | None],
        out: np.ndarray,
    ) -> np.ndarray:
        """Add one step's gradients into ``out`` in place, per-key.

        Keys missing from ``named_grads`` (or mapped to None) contribute
        nothing — the flat codec covers non-trainable buffer slots too.
        Bit-identical to ``out += gradients_to_vector(...)`` without
        materialising the intermediate full-size vector.
        """
        for key, offset, size in zip(self.keys, self.offsets, self.sizes):
            grad = named_grads.get(key)
            if grad is None:
                continue
            grad = np.asarray(grad, dtype=np.float64)
            if grad.size != size:
                raise SerializationError(
                    f"gradient for {key!r} has {grad.size} scalars, "
                    f"template expects {size}"
                )
            view = out[offset : offset + size]
            np.add(view, grad.ravel(), out=view)
        return out


def state_to_bytes(state: dict[str, np.ndarray], compress: bool = True) -> bytes:
    """Serialize a state dict to a (compressed) ``.npz`` byte blob."""
    buf = io.BytesIO()
    save = np.savez_compressed if compress else np.savez
    # Keys may contain characters that are fine for npz archive member names.
    # Entries that are already ndarrays go straight through — no copies.
    save(buf, **{k: v if isinstance(v, np.ndarray) else np.asarray(v) for k, v in state.items()})
    return buf.getvalue()


def state_from_bytes(blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    try:
        with np.load(io.BytesIO(blob)) as archive:
            return {k: archive[k].copy() for k in archive.files}
    except Exception as exc:  # zipfile/np.load raise various types
        raise SerializationError(f"cannot decode parameter blob: {exc}") from exc


def state_num_scalars(state: dict[str, np.ndarray]) -> int:
    """Total scalar count across all entries."""
    return int(sum(np.asarray(v).size for v in state.values()))


def state_to_vector(state: dict[str, np.ndarray]) -> np.ndarray:
    """Pack all entries (sorted by key) into one contiguous float64 vector."""
    if not state:
        raise SerializationError("cannot vectorize an empty state dict")
    return StateLayout.for_state(state).pack(state)


def vector_to_state(
    vector: np.ndarray, template: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Unpack a flat vector into arrays shaped like ``template`` (sorted keys)."""
    if not template:
        size = np.asarray(vector, dtype=np.float64).size
        raise SerializationError(
            f"vector of size {size} does not match template (0 scalars)"
        )
    return StateLayout.for_state(template).unpack(vector)


def gradients_to_vector(
    named_grads: dict[str, np.ndarray | None], template: dict[str, np.ndarray]
) -> np.ndarray:
    """Pack gradients into the flat codec, aligned with ``template``.

    The flat parameter vector covers every ``state_dict`` entry (sorted by
    key), including non-trainable buffers that never receive a gradient;
    slots whose key is missing from ``named_grads`` (or maps to None) are
    zero-filled so the result is position-compatible with
    :func:`state_to_vector` of the same template.
    """
    if not template:
        raise SerializationError("cannot vectorize against an empty template")
    layout = StateLayout.for_state(template)
    return layout.accumulate(named_grads, layout.zeros())


class GradientAccumulator:
    """Running sum of per-step gradients in the flat-vector codec.

    Client-side subtask training applies many optimizer steps; gradient-
    consuming update rules (Downpour, DC-ASGD, Rescaled ASGD) need the
    *accumulated* local gradient in the same flat layout as the parameter
    vector.  ``add`` is called once per backward pass with the model's
    ``named_parameters`` gradients; ``total`` is the upload payload.

    Accumulation is in place into per-key slices of one preallocated
    total — no full-size temporary per step.
    """

    def __init__(self, template: dict[str, np.ndarray]) -> None:
        self.template = template
        self._layout = StateLayout.for_state(template)
        self._total = self._layout.zeros()

    def add(self, named_grads: dict[str, np.ndarray | None]) -> None:
        """Accumulate one step's gradients."""
        self._layout.accumulate(named_grads, self._total)

    @property
    def total(self) -> np.ndarray:
        """The accumulated gradient vector so far."""
        return self._total


def state_checksum(state: dict[str, np.ndarray]) -> str:
    """Stable content hash of a state dict (used by the BOINC validator)."""
    digest = hashlib.sha256()
    for key in sorted(state):
        digest.update(key.encode())
        arr = _as_f64_contiguous(state[key])
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


# ``compressed_size`` memoisation: zlib over the full ~21 MB parameter blob
# costs ~100 ms; the simulation asks for the same payload's size repeatedly
# (work generator, catalog publishes, transfer planning).  Key by a cheap
# BLAKE2b content digest so identical payloads compress exactly once.
_COMPRESSED_SIZE_CACHE: "OrderedDict[tuple[bytes, int], int]" = OrderedDict()
_COMPRESSED_SIZE_CACHE_MAX = 256
# Process-global hit/miss tallies for the memo above.  Surfaced through
# the (digest-excluded) obs metrics registry only — the cache is shared
# across runs in one process, so putting these in RunResult.counters
# would break repeat-run determinism.
_COMPRESSED_SIZE_CACHE_STATS = {"hits": 0, "misses": 0}


def compressed_size(payload: bytes | np.ndarray, level: int = 6) -> int:
    """Size in bytes of ``payload`` after zlib compression.

    Models BOINC's server-side gzip feature (§III-B): the network transfer
    model charges for compressed bytes when compression is enabled.
    Results are memoised by content checksum (bounded LRU, so
    million-publish fleet runs cannot grow it without limit), so repeated
    queries for the same payload skip the (expensive) compression pass.
    """
    if isinstance(payload, np.ndarray):
        arr = payload if payload.flags["C_CONTIGUOUS"] else np.ascontiguousarray(payload)
        payload = arr.tobytes()
    key = (hashlib.blake2b(payload, digest_size=16).digest(), level)
    cached = _COMPRESSED_SIZE_CACHE.get(key)
    if cached is not None:
        _COMPRESSED_SIZE_CACHE.move_to_end(key)
        _COMPRESSED_SIZE_CACHE_STATS["hits"] += 1
        return cached
    _COMPRESSED_SIZE_CACHE_STATS["misses"] += 1
    size = len(zlib.compress(payload, level))
    _COMPRESSED_SIZE_CACHE[key] = size
    while len(_COMPRESSED_SIZE_CACHE) > _COMPRESSED_SIZE_CACHE_MAX:
        _COMPRESSED_SIZE_CACHE.popitem(last=False)
    return size


def compressed_size_cache_stats() -> tuple[int, int]:
    """(hits, misses) of the process-global ``compressed_size`` memo."""
    return (
        _COMPRESSED_SIZE_CACHE_STATS["hits"],
        _COMPRESSED_SIZE_CACHE_STATS["misses"],
    )


# Codec plane (ROADMAP "first-class codecs in repro.nn.serialization").
# Implemented in repro.nn.codecs — imported last because the codecs call
# back into compressed_size for their measured wire sizes.
from .codecs import (  # noqa: E402
    CODEC_NAMES,
    VALUE_QUANTS,
    Codec,
    DeltaCodec,
    Encoded,
    Fp16Codec,
    Int8Codec,
    TopKCodec,
    ZlibCodec,
    make_codec,
)
