"""Parameter (de)serialization — the ``.h5``/``.npz`` files of the paper.

The paper ships parameters as a compressed ``.h5`` file (21.2 MB for the
~5M-parameter ResNetV2) and data shards as ``.npz`` (3.9 MB each).  Two
representations are provided:

* **bytes** — a compressed ``.npz`` blob, used wherever a component needs a
  realistic payload size (KV store values, web-server file transfers);
* **flat vector** — all parameters packed into one contiguous ``float64``
  vector, used by the parameter-update rules so that Eq. (1) is a pair of
  vectorized in-place BLAS-1 operations rather than a per-layer Python loop.
"""

from __future__ import annotations

import hashlib
import io
import zlib

import numpy as np

from ..errors import SerializationError

__all__ = [
    "state_to_bytes",
    "state_from_bytes",
    "state_to_vector",
    "vector_to_state",
    "state_num_scalars",
    "state_checksum",
    "gradients_to_vector",
    "GradientAccumulator",
    "compressed_size",
]


def state_to_bytes(state: dict[str, np.ndarray], compress: bool = True) -> bytes:
    """Serialize a state dict to a (compressed) ``.npz`` byte blob."""
    buf = io.BytesIO()
    save = np.savez_compressed if compress else np.savez
    # Keys may contain characters that are fine for npz archive member names.
    save(buf, **{k: np.asarray(v) for k, v in state.items()})
    return buf.getvalue()


def state_from_bytes(blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    try:
        with np.load(io.BytesIO(blob)) as archive:
            return {k: archive[k].copy() for k in archive.files}
    except Exception as exc:  # zipfile/np.load raise various types
        raise SerializationError(f"cannot decode parameter blob: {exc}") from exc


def state_num_scalars(state: dict[str, np.ndarray]) -> int:
    """Total scalar count across all entries."""
    return int(sum(np.asarray(v).size for v in state.values()))


def state_to_vector(state: dict[str, np.ndarray]) -> np.ndarray:
    """Pack all entries (sorted by key) into one contiguous float64 vector."""
    if not state:
        raise SerializationError("cannot vectorize an empty state dict")
    parts = [np.asarray(state[k], dtype=np.float64).ravel() for k in sorted(state)]
    return np.concatenate(parts)


def vector_to_state(
    vector: np.ndarray, template: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Unpack a flat vector into arrays shaped like ``template`` (sorted keys)."""
    vector = np.asarray(vector, dtype=np.float64)
    expected = state_num_scalars(template)
    if vector.ndim != 1 or vector.size != expected:
        raise SerializationError(
            f"vector of size {vector.size} does not match template ({expected} scalars)"
        )
    out: dict[str, np.ndarray] = {}
    offset = 0
    for key in sorted(template):
        shape = np.asarray(template[key]).shape
        size = int(np.prod(shape)) if shape else 1
        out[key] = vector[offset : offset + size].reshape(shape).copy()
        offset += size
    return out


def gradients_to_vector(
    named_grads: dict[str, np.ndarray | None], template: dict[str, np.ndarray]
) -> np.ndarray:
    """Pack gradients into the flat codec, aligned with ``template``.

    The flat parameter vector covers every ``state_dict`` entry (sorted by
    key), including non-trainable buffers that never receive a gradient;
    slots whose key is missing from ``named_grads`` (or maps to None) are
    zero-filled so the result is position-compatible with
    :func:`state_to_vector` of the same template.
    """
    if not template:
        raise SerializationError("cannot vectorize against an empty template")
    parts: list[np.ndarray] = []
    for key in sorted(template):
        shape = np.asarray(template[key]).shape
        size = int(np.prod(shape)) if shape else 1
        grad = named_grads.get(key)
        if grad is None:
            parts.append(np.zeros(size))
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.size != size:
                raise SerializationError(
                    f"gradient for {key!r} has {grad.size} scalars, "
                    f"template expects {size}"
                )
            parts.append(grad.ravel())
    return np.concatenate(parts)


class GradientAccumulator:
    """Running sum of per-step gradients in the flat-vector codec.

    Client-side subtask training applies many optimizer steps; gradient-
    consuming update rules (Downpour, DC-ASGD, Rescaled ASGD) need the
    *accumulated* local gradient in the same flat layout as the parameter
    vector.  ``add`` is called once per backward pass with the model's
    ``named_parameters`` gradients; ``total`` is the upload payload.
    """

    def __init__(self, template: dict[str, np.ndarray]) -> None:
        self.template = template
        self._total = np.zeros(state_num_scalars(template))

    def add(self, named_grads: dict[str, np.ndarray | None]) -> None:
        """Accumulate one step's gradients."""
        self._total += gradients_to_vector(named_grads, self.template)

    @property
    def total(self) -> np.ndarray:
        """The accumulated gradient vector so far."""
        return self._total


def state_checksum(state: dict[str, np.ndarray]) -> str:
    """Stable content hash of a state dict (used by the BOINC validator)."""
    digest = hashlib.sha256()
    for key in sorted(state):
        digest.update(key.encode())
        arr = np.ascontiguousarray(np.asarray(state[key], dtype=np.float64))
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def compressed_size(payload: bytes | np.ndarray, level: int = 6) -> int:
    """Size in bytes of ``payload`` after zlib compression.

    Models BOINC's server-side gzip feature (§III-B): the network transfer
    model charges for compressed bytes when compression is enabled.
    """
    if isinstance(payload, np.ndarray):
        payload = np.ascontiguousarray(payload).tobytes()
    return len(zlib.compress(payload, level))
