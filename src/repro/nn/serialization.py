"""Parameter (de)serialization — the ``.h5``/``.npz`` files of the paper.

The paper ships parameters as a compressed ``.h5`` file (21.2 MB for the
~5M-parameter ResNetV2) and data shards as ``.npz`` (3.9 MB each).  Two
representations are provided:

* **bytes** — a compressed ``.npz`` blob, used wherever a component needs a
  realistic payload size (KV store values, web-server file transfers);
* **flat vector** — all parameters packed into one contiguous ``float64``
  vector, used by the parameter-update rules so that Eq. (1) is a pair of
  vectorized in-place BLAS-1 operations rather than a per-layer Python loop.
"""

from __future__ import annotations

import hashlib
import io
import zlib

import numpy as np

from ..errors import SerializationError

__all__ = [
    "state_to_bytes",
    "state_from_bytes",
    "state_to_vector",
    "vector_to_state",
    "state_num_scalars",
    "state_checksum",
    "compressed_size",
]


def state_to_bytes(state: dict[str, np.ndarray], compress: bool = True) -> bytes:
    """Serialize a state dict to a (compressed) ``.npz`` byte blob."""
    buf = io.BytesIO()
    save = np.savez_compressed if compress else np.savez
    # Keys may contain characters that are fine for npz archive member names.
    save(buf, **{k: np.asarray(v) for k, v in state.items()})
    return buf.getvalue()


def state_from_bytes(blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    try:
        with np.load(io.BytesIO(blob)) as archive:
            return {k: archive[k].copy() for k in archive.files}
    except Exception as exc:  # zipfile/np.load raise various types
        raise SerializationError(f"cannot decode parameter blob: {exc}") from exc


def state_num_scalars(state: dict[str, np.ndarray]) -> int:
    """Total scalar count across all entries."""
    return int(sum(np.asarray(v).size for v in state.values()))


def state_to_vector(state: dict[str, np.ndarray]) -> np.ndarray:
    """Pack all entries (sorted by key) into one contiguous float64 vector."""
    if not state:
        raise SerializationError("cannot vectorize an empty state dict")
    parts = [np.asarray(state[k], dtype=np.float64).ravel() for k in sorted(state)]
    return np.concatenate(parts)


def vector_to_state(
    vector: np.ndarray, template: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Unpack a flat vector into arrays shaped like ``template`` (sorted keys)."""
    vector = np.asarray(vector, dtype=np.float64)
    expected = state_num_scalars(template)
    if vector.ndim != 1 or vector.size != expected:
        raise SerializationError(
            f"vector of size {vector.size} does not match template ({expected} scalars)"
        )
    out: dict[str, np.ndarray] = {}
    offset = 0
    for key in sorted(template):
        shape = np.asarray(template[key]).shape
        size = int(np.prod(shape)) if shape else 1
        out[key] = vector[offset : offset + size].reshape(shape).copy()
        offset += size
    return out


def state_checksum(state: dict[str, np.ndarray]) -> str:
    """Stable content hash of a state dict (used by the BOINC validator)."""
    digest = hashlib.sha256()
    for key in sorted(state):
        digest.update(key.encode())
        arr = np.ascontiguousarray(np.asarray(state[key], dtype=np.float64))
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def compressed_size(payload: bytes | np.ndarray, level: int = 6) -> int:
    """Size in bytes of ``payload`` after zlib compression.

    Models BOINC's server-side gzip feature (§III-B): the network transfer
    model charges for compressed bytes when compression is enabled.
    """
    if isinstance(payload, np.ndarray):
        payload = np.ascontiguousarray(payload).tobytes()
    return len(zlib.compress(payload, level))
