"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError`` from user code, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class ShapeError(ReproError):
    """Array shapes are incompatible for the requested operation."""


class GradientError(ReproError):
    """Autograd failure: backward on a non-scalar, detached graph, etc."""


class SerializationError(ReproError):
    """Parameter/model (de)serialization failed."""


class CheckpointError(SerializationError):
    """A checkpoint file is corrupt, truncated, or fails verification."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulerError(ReproError):
    """BOINC-like scheduler invariant violation."""


class WorkunitError(ReproError):
    """Illegal workunit state transition or lookup."""


class KVStoreError(ReproError):
    """Key-value store failure (missing key, closed store, CAS conflict)."""


class TrainingError(ReproError):
    """A distributed training run failed or was misconfigured."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/telemetry layer (bad quantile, timer misnesting, ...)."""


class InvariantViolation(ReproError):
    """The invariant auditor caught a conservation-law violation in the trace."""
